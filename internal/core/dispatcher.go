package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dandelion/internal/autoscale"
	"dandelion/internal/controlplane"
	"dandelion/internal/ctlplane"
	"dandelion/internal/dvm"
	"dandelion/internal/engine"
	"dandelion/internal/graph"
	"dandelion/internal/isolation"
	"dandelion/internal/journal"
	"dandelion/internal/memctx"
	"dandelion/internal/sched"
)

// DefaultTenant is the identity invocations run under when the caller
// supplies none; see internal/sched.
const DefaultTenant = sched.DefaultTenant

// Execution errors.
var (
	ErrTooDeep        = errors.New("core: nested composition depth limit exceeded")
	ErrInstanceFanout = errors.New("core: mismatched instance counts across inputs")
	ErrMissingInput   = errors.New("core: missing composition input")
	// ErrDraining rejects new invocations while the node drains (see
	// Platform.Drain); in-flight compositions complete normally.
	ErrDraining = errors.New("core: platform draining")
	// ErrExpired re-exports the scheduling plane's deadline-drop error:
	// a dispatch whose deadline passed while parked (never executed).
	ErrExpired = sched.ErrExpired
)

// IsTimeout reports whether an invocation error is deadline-class: the
// caller's context deadline fired mid-flight, or the scheduling plane
// dropped the work unexecuted because its deadline had already passed.
// The frontend maps these to 504; Stats.TimedOut counts them.
func IsTimeout(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, sched.ErrExpired)
}

// Options configures a Platform.
type Options struct {
	// Backend isolates compute functions; nil selects the CHERI-style
	// backend (the fastest in Table 1).
	Backend isolation.Backend
	// ComputeEngines and CommEngines size the initial pools; zero
	// values default to 2 and 1 (the paper boots with a single I/O
	// core and grows it on demand).
	ComputeEngines int
	CommEngines    int
	// CacheBinaries keeps decoded programs in memory (§7.4 "cached").
	CacheBinaries bool
	// ZeroCopy routes the data plane through ownership moves instead of
	// copies (§6.1's future-work data path): statement outputs are
	// handed off out of the producing memory context (memctx.TakeOutputs
	// / memctx.HandoffOutput) and adopted by the consuming statement's
	// context (memctx.AdoptInputSet) without cloning item payloads, on
	// both the single-invoke and the chunked batch paths. Functions must
	// treat input items as immutable under this option — payloads may be
	// shared with other instances of the same batch.
	ZeroCopy bool
	// Balance starts the PI-controller core balancer.
	Balance bool
	// MaxDepth bounds nested composition recursion (default 16).
	MaxDepth int
	// TenantWeights seeds the scheduling plane's per-tenant DRR weights;
	// unlisted tenants (including DefaultTenant) get weight 1. Weights
	// can be changed at runtime via SetTenantWeight.
	TenantWeights map[string]int
	// ByteFairness makes the scheduling plane's DRR deficit charge
	// payload bytes instead of task counts (sched.Config.ByteFairness):
	// every dispatched task carries its cumulative input bytes, so an
	// analytics tenant of 1 MiB scans and an equal-weight interactive
	// tenant of 100-byte invokes split the engines by *bytes moved*,
	// and the flood cannot starve the interactive tenant of dispatch
	// slots. Applies to both the compute and communication planes.
	ByteFairness bool
	// DispatchWindow bounds dispatched-but-unfinished tasks per engine
	// pool; 0 tracks the pool size (2× compute engines; comm engines ×
	// their green-thread capacity).
	DispatchWindow int
	// Autoscale starts the elasticity controller: a control loop that
	// grows and shrinks the compute pool from queue backlog and
	// dispatch-wait p99 (see internal/ctlplane), counted in
	// Stats.EngineResizes. It can be toggled at runtime via
	// SetAutoscale. Elasticity tunes it; by default the pool floats in
	// [ComputeEngines, 4×ComputeEngines].
	Autoscale  bool
	Elasticity ctlplane.Config
	// Journal, when non-nil, makes the node durable: keyed invocations
	// and admin reconfigurations are appended to it, and construction
	// replays it — reconfig records re-apply through the Reconfigurer
	// surface, completed-key records rebuild the dedup table (see
	// journal.go and docs/JOURNAL.md). The platform owns the journal
	// from here on and closes it on Shutdown.
	Journal journal.Journal
}

// Platform is one Dandelion worker node: registry + dispatcher +
// engines. It is safe for concurrent use.
type Platform struct {
	reg      *registry
	backend  isolation.Backend
	opts     Options
	programs *programCache

	// plans caches precompiled invocation plans by composition name
	// (see plan.go); entries are invalidated by registry generation.
	plans sync.Map

	computePool *engine.Pool
	commPool    *engine.Pool
	balancer    *controlplane.Balancer

	// The dynamic control plane (ctlplane.go): the elasticity
	// controller resizing the compute pool, the batch admission plane
	// whose clamp the control plane can override, and the drain gate
	// the invoke entry points check.
	elastic  *ctlplane.Elasticity
	adm      *autoscale.Admission
	draining atomic.Bool

	// The scheduling plane: all dispatches enter the engine queues
	// through these per-pool DRR schedulers, keyed by tenant.
	computeSched *sched.Scheduler
	commSched    *sched.Scheduler

	// ctrs holds every hot-path counter — invocation/batch admissions,
	// the data-plane set/byte counters, context-pool provenance —
	// sharded per goroutine affinity so concurrent invokes never
	// serialize on bookkeeping (see counters.go). Stats() merges lazily.
	ctrs *hotCounters

	// Memory gauges stay unsharded: the peak is a max over the summed
	// committed bytes, which needs the total order a single atomic
	// provides (rationale in counters.go).
	memCommitted atomic.Int64
	memPeak      atomic.Int64

	// Deadline-plane counters (plain atomics — ticked once per failed
	// or shed request, far off the happy path): timedOut counts
	// invocations lost to a deadline (IsTimeout errors at the public
	// entry points), shed counts requests the frontend refused outright
	// because their budget could not be met (see ShouldShed).
	timedOut atomic.Uint64
	shed     atomic.Uint64

	// The durability plane (journal.go): the invocation journal (nil
	// without Options.Journal), the always-on completed-key dedup
	// table, and their gauges. jreplaying gates the reconfiguration
	// setters so replayed records are not re-journaled.
	jrnl        journal.Journal
	dedup       *journal.Dedup
	jreplaying  atomic.Bool
	jAppends    atomic.Uint64
	jAppendErrs atomic.Uint64
	jReplayed   uint64
}

// NewPlatform builds and starts a worker node.
func NewPlatform(opts Options) (*Platform, error) {
	if opts.Backend == nil {
		b, err := isolation.New("cheri")
		if err != nil {
			return nil, err
		}
		opts.Backend = b
	}
	if opts.ComputeEngines <= 0 {
		opts.ComputeEngines = 2
	}
	if opts.CommEngines <= 0 {
		opts.CommEngines = 1
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 16
	}
	p := &Platform{
		reg:      newRegistry(),
		backend:  opts.Backend,
		opts:     opts,
		programs: newProgramCache(),
		ctrs:     newHotCounters(),
		adm:      autoscale.NewAdmission(autoscale.AdmissionConfig{}),
	}
	p.computePool = engine.NewPool(engine.Compute, engine.NewQueue())
	p.commPool = engine.NewPool(engine.Communication, engine.NewQueue())
	p.computePool.SetCount(opts.ComputeEngines)
	p.commPool.SetCount(opts.CommEngines)
	// The dispatch windows track pool sizes so the balancer's SetCount
	// re-assignments widen or narrow the refill allowance automatically.
	// Comm engines multiplex green threads, so their window is per-slot.
	p.computeSched = sched.New(p.computePool.Queue(), sched.Config{
		Window:       opts.DispatchWindow,
		WindowFn:     func() int { return 2 * p.computePool.Count() },
		Weights:      opts.TenantWeights,
		ByteFairness: opts.ByteFairness,
	})
	p.commSched = sched.New(p.commPool.Queue(), sched.Config{
		Window:       opts.DispatchWindow,
		WindowFn:     func() int { return p.commPool.Count() * engine.DefaultCommConcurrency },
		Weights:      opts.TenantWeights,
		ByteFairness: opts.ByteFairness,
	})
	if opts.Balance {
		p.balancer = controlplane.NewBalancer(controlplane.NewController(), p.computePool, p.commPool)
		p.balancer.Start()
	}
	if opts.Autoscale {
		ecfg := opts.Elasticity
		if ecfg.Min < 1 {
			ecfg.Min = opts.ComputeEngines
		}
		p.elastic = ctlplane.NewElasticity(ecfg, p.computePool, p.elasticSignals)
		p.elastic.Start()
	}
	p.dedup = journal.NewDedup(0)
	if opts.Journal != nil {
		p.jrnl = opts.Journal
		if err := p.replayJournal(); err != nil {
			p.Shutdown()
			return nil, fmt.Errorf("core: journal replay: %w", err)
		}
	}
	return p, nil
}

// Shutdown stops engines and the balancer, waiting for in-flight work.
// The schedulers close first so parked tasks are rejected instead of
// stranded behind a closing queue.
func (p *Platform) Shutdown() {
	if p.elastic != nil {
		p.elastic.Stop()
	}
	if p.balancer != nil {
		p.balancer.Stop()
	}
	p.computeSched.Close()
	p.commSched.Close()
	p.computePool.Shutdown()
	p.commPool.Shutdown()
	if p.jrnl != nil {
		p.jrnl.Close() // checkpoints; Close is idempotent
	}
}

// SetTenantWeight sets a tenant's DRR dispatch weight (minimum 1) on
// both the compute and communication scheduling planes.
func (p *Platform) SetTenantWeight(tenant string, w int) {
	p.computeSched.SetWeight(tenant, w)
	p.commSched.SetWeight(tenant, w)
	p.journalReconfig(journal.OpTenantWeight, tenant, int64(p.TenantWeight(tenant)), 0)
}

// RegisterFunction registers a compute function.
func (p *Platform) RegisterFunction(f ComputeFunc) error {
	return p.reg.addFunc(f, p.backend, p.opts.CacheBinaries, p.programs)
}

// RegisterComm registers a communication function. Only the platform
// should call this; user code cannot supply implementations.
func (p *Platform) RegisterComm(f CommFunc) error { return p.reg.addComm(f) }

// RegisterComposition registers a parsed composition DAG.
func (p *Platform) RegisterComposition(c *graph.Composition) error {
	return p.reg.addComposition(c)
}

// RegisterCompositionText parses DSL source and registers every
// composition it contains, returning their names.
func (p *Platform) RegisterCompositionText(src string) ([]string, error) {
	return p.reg.addCompositionText(src)
}

// Stats is a point-in-time snapshot of platform gauges. The frontend
// serializes it verbatim as the GET /stats JSON body (field names are
// the JSON keys); docs/STATS.md documents the schema for clients.
type Stats struct {
	// Invocations counts composition invocations admitted (batched
	// requests count individually); Batches counts InvokeBatch calls.
	Invocations uint64
	Batches     uint64
	// ComputeEngines / CommEngines are the current pool sizes, and
	// ComputeQueueLen / CommQueueLen their engine-queue backlogs.
	ComputeEngines  int
	CommEngines     int
	ComputeQueueLen int
	CommQueueLen    int
	// CommittedBytes is memory currently committed for live contexts;
	// PeakCommitted its historical high-water mark.
	CommittedBytes int64
	PeakCommitted  int64
	// ComputeCompleted / CommCompleted are cumulative finished engine
	// tasks; CachedPrograms is the decoded-binary cache population.
	ComputeCompleted uint64
	CommCompleted    uint64
	CachedPrograms   int
	// ZeroCopyHandoffs counts output/input sets that crossed a memory-
	// context boundary by ownership move (zero-copy handoff) instead of
	// by clone; ZeroCopyHandoffBytes is their summed payload size — the
	// bytes whose copy was avoided. Non-zero only with Options.ZeroCopy.
	ZeroCopyHandoffs     uint64
	ZeroCopyHandoffBytes uint64
	// CopiedSets / CopiedBytes are the copying-path counterparts: sets
	// and payload bytes cloned across context boundaries.
	CopiedSets  uint64
	CopiedBytes uint64
	// PooledContextReuses / PooledContextAllocs split the hot path's
	// memory-context acquisitions by provenance: recycled through the
	// memctx context pool (warm backing allocations) vs allocated
	// fresh. A steady-state node should see reuses dominate; a rising
	// alloc share means contexts are leaving the pool (e.g. oversized
	// regions) faster than they return.
	PooledContextReuses uint64
	PooledContextAllocs uint64
	// EngineResizes counts compute-pool resizes applied by the
	// elasticity controller (grows plus shrinks); 0 without
	// Options.Autoscale. AutoscaleOn reports the controller's runtime
	// switch, and Draining whether the node is refusing new invocations
	// (see Platform.Drain).
	EngineResizes uint64
	AutoscaleOn   bool
	Draining      bool
	// The durability-plane gauges. JournalEnabled reports whether the
	// node journals (Options.Journal); JournalAppends / JournalBytes /
	// JournalAppendErrors count records appended this process life,
	// the journal's durable size, and failed appends; JournalReplayed
	// is the record count construction replayed. DedupHits counts
	// duplicate keyed invocations absorbed by the completed-key table
	// (always on, journal or not) and DedupEntries its population.
	JournalEnabled      bool
	JournalAppends      uint64
	JournalAppendErrors uint64
	JournalReplayed     uint64
	JournalBytes        int64
	DedupHits           uint64
	DedupEntries        int
	// The deadline-plane counters. TimedOut counts invocations that
	// failed deadline-class (context deadline exceeded mid-flight, or
	// dropped unexecuted by the scheduler); Expired is the subset the
	// scheduling plane dropped at dispatch time, summed over tenants
	// (the per-tenant split lives in Tenants); Shed counts requests the
	// frontend refused with 503 because their deadline budget was
	// already unmeetable (see ShouldShed).
	TimedOut uint64
	Expired  uint64
	Shed     uint64
	// Tenants carries the scheduling plane's per-tenant gauges (queued,
	// running, completed, dispatch-wait), merged across the compute and
	// communication schedulers and sorted by tenant name.
	Tenants []sched.TenantStats
}

// Stats reports current platform gauges. The hot-path counters are
// merged from their per-goroutine shards here, on the cold read, so
// the invoke path never serializes on them.
func (p *Platform) Stats() Stats {
	t := p.ctrs.merge()
	var jBytes int64
	if s, ok := p.jrnl.(journal.Sizer); ok {
		jBytes = s.Size()
	}
	tenants := sched.MergeStats(p.computeSched.Stats(), p.commSched.Stats())
	var expired uint64
	for _, ts := range tenants {
		expired += ts.Expired
	}
	return Stats{
		TimedOut: p.timedOut.Load(),
		Expired:  expired,
		Shed:     p.shed.Load(),

		JournalEnabled:      p.jrnl != nil,
		JournalAppends:      p.jAppends.Load(),
		JournalAppendErrors: p.jAppendErrs.Load(),
		JournalReplayed:     p.jReplayed,
		JournalBytes:        jBytes,
		DedupHits:           p.dedup.Hits(),
		DedupEntries:        p.dedup.Len(),

		Tenants:          tenants,
		Invocations:      t.invocations,
		Batches:          t.batches,
		ComputeEngines:   p.computePool.Count(),
		CommEngines:      p.commPool.Count(),
		ComputeQueueLen:  p.computePool.Queue().Len(),
		CommQueueLen:     p.commPool.Queue().Len(),
		CommittedBytes:   p.memCommitted.Load(),
		PeakCommitted:    p.memPeak.Load(),
		ComputeCompleted: p.computePool.Completed(),
		CommCompleted:    p.commPool.Completed(),
		CachedPrograms:   p.programs.size(),
		EngineResizes:    p.EngineResizes(),
		AutoscaleOn:      p.AutoscaleOn(),
		Draining:         p.draining.Load(),

		ZeroCopyHandoffs:     t.zcHandoffs,
		ZeroCopyHandoffBytes: t.zcBytes,
		CopiedSets:           t.copiedSets,
		CopiedBytes:          t.copiedBytes,
		PooledContextReuses:  t.ctxReused,
		PooledContextAllocs:  t.ctxFresh,
	}
}

// Invoke runs a registered composition with the given input items and
// returns its output sets keyed by output name. It runs under
// DefaultTenant; multi-tenant callers use InvokeAs.
func (p *Platform) Invoke(name string, inputs map[string][]memctx.Item) (map[string][]memctx.Item, error) {
	return p.InvokeAsCtx(context.Background(), DefaultTenant, name, inputs)
}

// InvokeCtx is Invoke under a caller context: the context's deadline is
// attached to every engine dispatch the invocation causes (expired work
// is dropped unexecuted by the scheduling plane) and cancellation stops
// new statements from starting.
func (p *Platform) InvokeCtx(ctx context.Context, name string, inputs map[string][]memctx.Item) (map[string][]memctx.Item, error) {
	return p.InvokeAsCtx(ctx, DefaultTenant, name, inputs)
}

// InvokeAs runs a registered composition under a tenant identity: every
// engine dispatch it causes is scheduled in that tenant's DRR share and
// accounted in its gauges. An empty tenant means DefaultTenant.
func (p *Platform) InvokeAs(tenant, name string, inputs map[string][]memctx.Item) (map[string][]memctx.Item, error) {
	return p.InvokeAsCtx(context.Background(), tenant, name, inputs)
}

// InvokeAsCtx is InvokeAs under a caller context (see InvokeCtx).
// Deadline-class failures tick Stats.TimedOut.
func (p *Platform) InvokeAsCtx(ctx context.Context, tenant, name string, inputs map[string][]memctx.Item) (map[string][]memctx.Item, error) {
	if p.draining.Load() {
		return nil, ErrDraining
	}
	comp, err := p.reg.composition(name)
	if err != nil {
		return nil, err
	}
	p.ctrs.shard().invocations.Add(1)
	outs, err := p.invoke(ctx, tenant, p.planFor(comp), inputs, 0)
	p.noteTimeout(err)
	return outs, err
}

// noteTimeout ticks the deadline-loss counter for IsTimeout errors; the
// nil-error fast path is a single branch.
func (p *Platform) noteTimeout(err error) {
	if err != nil && IsTimeout(err) {
		p.timedOut.Add(1)
	}
}

// ShouldShed reports whether a new request for the tenant with the
// given deadline budget is already hopeless and should be refused at
// admission (503) instead of queued: the tenant has parked compute work
// (its dispatch window is saturated) whose oldest entry has been
// waiting longer than the whole budget, so a new submission would park
// behind it and expire unserved. A true return ticks Stats.Shed — the
// caller must actually shed. Zero budget (no deadline) never sheds.
func (p *Platform) ShouldShed(tenant string, budget time.Duration) bool {
	if budget <= 0 {
		return false
	}
	if tenant == "" {
		tenant = DefaultTenant
	}
	if p.computeSched.OldestWait(tenant) <= budget {
		return false
	}
	p.shed.Add(1)
	return true
}

// HasComposition reports whether a composition is registered, letting
// the frontend reject unknown names before admitting a batch.
func (p *Platform) HasComposition(name string) bool {
	_, err := p.reg.composition(name)
	return err == nil
}

// valueStore holds the dataflow values of one invocation. Values are
// exchanged by reference: producers deposit the sets they harvested
// (private clones on the copying path, handed-off buffers under
// ZeroCopy) and consumers receive aliases — every value-semantics copy
// the copying data path owes is paid exactly once, at the context
// boundary (Context.AddInputSet / Context.SetOutputs) for compute
// functions, or at the gather (clone=true) for communication
// functions, which have no context.
type valueStore struct {
	mu   sync.Mutex
	vals map[string][]memctx.Item
}

// valueStorePool recycles valueStores across invocations: every request
// allocates one (batch requests one each), and the map's buckets are
// the dominant cost. Recycling is safe because the store only holds
// item-slice references — putValueStore clears the keys (dropping the
// references) but keeps the buckets, and the slices themselves remain
// valid in the caller's output map after the store is reused.
var valueStorePool = sync.Pool{
	New: func() any { return &valueStore{vals: make(map[string][]memctx.Item, 8)} },
}

// maxPooledStoreVals bounds the dataflow names a recycled store may
// have held: Go maps never shrink their buckets, so a store inflated by
// one giant composition would stay giant in the pool forever (the same
// over-capacity rule as memctx's 4 MiB region recycle cap).
const maxPooledStoreVals = 512

func getValueStore() *valueStore { return valueStorePool.Get().(*valueStore) }

func putValueStore(s *valueStore) {
	if len(s.vals) > maxPooledStoreVals {
		return // oversized: leave it to the GC
	}
	clear(s.vals)
	valueStorePool.Put(s)
}

func (s *valueStore) get(name string, clone bool) []memctx.Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	items := s.vals[name]
	if !clone {
		return items
	}
	out := make([]memctx.Item, len(items))
	for i, it := range items {
		out[i] = it.Clone()
	}
	return out
}

func (s *valueStore) set(name string, items []memctx.Item) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vals[name] = items
}

func (p *Platform) invoke(ctx context.Context, tenant string, pl *compPlan, inputs map[string][]memctx.Item, depth int) (map[string][]memctx.Item, error) {
	if depth >= p.opts.MaxDepth {
		return nil, fmt.Errorf("%w (%d)", ErrTooDeep, p.opts.MaxDepth)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	comp := pl.comp
	store := getValueStore()
	defer putValueStore(store)
	for _, in := range comp.Inputs {
		items, ok := inputs[in]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrMissingInput, in)
		}
		store.set(in, items)
	}

	done := make([]chan struct{}, len(comp.Stmts))
	for i := range done {
		done[i] = make(chan struct{})
	}
	var firstErr error
	var errMu sync.Mutex
	var failed atomic.Bool
	setErr := func(err error) {
		errMu.Lock()
		defer errMu.Unlock()
		if firstErr == nil {
			firstErr = err
		}
		failed.Store(true)
	}

	var wg sync.WaitGroup
	for i := range comp.Stmts {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(done[i])
			for _, d := range pl.deps[i] {
				<-done[d]
			}
			if failed.Load() {
				return
			}
			if err := ctx.Err(); err != nil {
				setErr(err)
				return
			}
			if err := p.runStatement(ctx, tenant, &pl.stmts[i], store, depth); err != nil {
				setErr(pl.stmts[i].wrap(err))
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	out := make(map[string][]memctx.Item, len(comp.Outputs))
	for _, b := range comp.Outputs {
		out[b.Name] = store.get(b.Value, false)
	}
	return out, nil
}

// runStatement expands a statement into instances per the edge modes,
// executes them on the appropriate engines (scheduled under the tenant's
// DRR share), and merges outputs. The vertex, instance shape, and error
// label come precompiled from the statement's plan (plan.go).
func (p *Platform) runStatement(ctx context.Context, tenant string, sp *stmtPlan, store *valueStore, depth int) error {
	st := *sp.st
	v, err := p.resolveStmt(sp)
	if err != nil {
		return err
	}
	// The context deadline rides along on every engine dispatch below;
	// zero (no deadline) costs the scheduler a single IsZero check.
	deadline, _ := ctx.Deadline()

	// Gather argument items; decide skip (§4.4): any non-optional input
	// set with zero items suppresses execution, defining empty outputs.
	// For compute functions and nested compositions the gather aliases
	// the store's items — the one value-semantics clone each instance is
	// owed happens at the context boundary (AddInputSet), not here.
	// Communication functions have no memory context, so on the copying
	// path their one clone is paid here instead (under ZeroCopy they
	// receive aliases and must not mutate them, per the CommFunc
	// contract).
	cloneGather := v.comm != nil && !p.opts.ZeroCopy
	argItems := make([][]memctx.Item, len(st.Args))
	skip := false
	for ai, a := range st.Args {
		argItems[ai] = store.get(a.Value, cloneGather)
		if len(argItems[ai]) == 0 && !a.Optional {
			skip = true
		}
	}
	if skip {
		for _, r := range st.Rets {
			store.set(r.Value, nil)
		}
		return nil
	}

	var instances []instance
	if sp.broadcastOnly {
		// Precompiled shape: every arg broadcasts, exactly one instance.
		instances = []instance{singleInstance(st.Args, argItems)}
	} else if instances, err = expandInstances(st.Args, argItems); err != nil {
		return err
	}

	// Execute instances concurrently; collect outputs per instance to
	// keep merge order deterministic.
	results := make([][]memctx.Set, len(instances))
	errs := make([]error, len(instances))
	var wg sync.WaitGroup
	for idx, inst := range instances {
		idx, inst := idx, inst
		wg.Add(1)
		run := func() {
			defer wg.Done()
			outs, err := p.runInstance(ctx, tenant, v, st, inst, depth, nil)
			results[idx], errs[idx] = outs, err
		}
		reject := func(err error) {
			errs[idx] = err
			wg.Done()
		}
		switch {
		case v.comm != nil:
			if err := p.commSched.Submit(tenant, sched.Task{Do: run, OnReject: reject, Deadline: deadline, Bytes: instanceBytes(inst)}); err != nil {
				reject(err)
			}
		case v.fn != nil:
			// Compute tasks run on an engine with a stable shard index;
			// hand it through so counter ticks hit a fixed shard instead
			// of re-deriving one per call.
			runOn := func(shard int) {
				defer wg.Done()
				outs, err := p.runInstance(ctx, tenant, v, st, inst, depth, p.ctrs.shardAt(shard))
				results[idx], errs[idx] = outs, err
			}
			if err := p.computeSched.Submit(tenant, sched.Task{DoSharded: runOn, OnReject: reject, Deadline: deadline, Bytes: instanceBytes(inst)}); err != nil {
				reject(err)
			}
		default:
			// Nested composition: orchestrated inline by the dispatcher
			// green thread; its statements use the engines themselves.
			go run()
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Merge instance outputs in instance order under each Ret binding.
	for _, r := range st.Rets {
		var merged []memctx.Item
		for _, outs := range results {
			for _, s := range outs {
				if s.Name == r.Set {
					merged = append(merged, s.Items...)
				}
			}
		}
		store.set(r.Value, merged)
	}
	return nil
}

// instance is one function instantiation: the input sets it receives.
type instance []memctx.Set

// expandInstances applies the all/each/key distribution keywords. Args
// in `all` mode broadcast to every instance; `each`/`key` args split
// into groups. All split args must agree on the group count (or be
// broadcast), matching co-partitioned zip semantics.
func expandInstances(args []graph.Arg, items [][]memctx.Item) ([]instance, error) {
	type argGroups struct {
		groups [][]memctx.Item
	}
	split := make([]argGroups, len(args))
	n := 1
	for ai, a := range args {
		switch a.Mode {
		case graph.All:
			split[ai].groups = [][]memctx.Item{items[ai]}
		case graph.Each:
			gs := make([][]memctx.Item, len(items[ai]))
			for i := range items[ai] {
				gs[i] = items[ai][i : i+1]
			}
			split[ai].groups = gs
		case graph.Key:
			sets := memctx.GroupByKey(memctx.Set{Name: a.Param, Items: items[ai]})
			gs := make([][]memctx.Item, len(sets))
			for i := range sets {
				gs[i] = sets[i].Items
			}
			split[ai].groups = gs
		default:
			return nil, fmt.Errorf("core: unknown distribution mode %v", a.Mode)
		}
		if g := len(split[ai].groups); g > 1 {
			if n > 1 && g != n {
				return nil, fmt.Errorf("%w: %d vs %d", ErrInstanceFanout, n, g)
			}
			n = g
		}
	}
	out := make([]instance, n)
	for i := 0; i < n; i++ {
		inst := make(instance, len(args))
		for ai, a := range args {
			gs := split[ai].groups
			var group []memctx.Item
			if len(gs) == 1 {
				group = gs[0]
			} else {
				group = gs[i]
			}
			inst[ai] = memctx.Set{Name: a.Param, Items: group}
		}
		out[i] = inst
	}
	return out, nil
}

// runInstance executes one instance of a vertex. It is called on an
// engine worker (compute or communication) or, for nested compositions,
// on a dispatcher goroutine. sh, when non-nil, is the engine's stable
// counter shard; nil callers (comm engines, nested compositions) let
// the compute path derive one.
func (p *Platform) runInstance(ctx context.Context, tenant string, v vertex, st graph.Stmt, inst instance, depth int, sh *hotShard) ([]memctx.Set, error) {
	// The scheduler drops entries that expire parked in its backlog, but
	// a task can also outlive its deadline queued at the engine after
	// dispatch; checking here keeps dead work from occupying an engine.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch {
	case v.comm != nil:
		return v.comm.Invoke(inst)
	case v.fn != nil:
		return p.runCompute(v.fn, inst, sh)
	default:
		childInputs := make(map[string][]memctx.Item, len(inst))
		for _, s := range inst {
			childInputs[s.Name] = s.Items
		}
		childOut, err := p.invoke(ctx, tenant, p.planFor(v.comp), childInputs, depth+1)
		if err != nil {
			return nil, err
		}
		sets := make([]memctx.Set, 0, len(childOut))
		for name, items := range childOut {
			sets = append(sets, memctx.Set{Name: name, Items: items})
		}
		return sets, nil
	}
}

// funcMemBytes resolves a function's declared context limit.
func funcMemBytes(f *registeredFunc) int {
	if f.MemBytes > 0 {
		return f.MemBytes
	}
	return memctx.DefaultLimit
}

// runCompute prepares an isolated memory context (recycled through the
// memctx pool), executes the function under the configured backend,
// harvests outputs, and recycles the context.
func (p *Platform) runCompute(f *registeredFunc, inst instance, sh *hotShard) ([]memctx.Set, error) {
	ctx, reused := memctx.NewPooled(funcMemBytes(f))
	if sh == nil {
		sh = p.ctrs.shard()
	}
	if reused {
		sh.ctxReused.Add(1)
	} else {
		sh.ctxFresh.Add(1)
	}
	outs, err := p.runComputeIn(ctx, f, f.prepared, inst, nil, sh)
	// Safe to recycle in both data-plane modes: harvested outputs were
	// moved out of (or cloned by) the context, and their payloads are
	// independent heap buffers, never region-backed.
	memctx.Recycle(ctx)
	return outs, err
}

// runComputeIn executes one instance inside the provided context, which
// the batch path reuses (via Reset) across the instances of a chunk.
// prepared, when non-nil, skips the per-execution binary decode.
//
// The data plane has two modes, and in both each boundary crossing
// costs at most one memcpy. The copying path (default) clones the
// instance's input sets into the context (AddInputSet — the copy into
// the function's memory, preserving value semantics), lets the function
// read the context's private copy in place (ShareInputSets — the
// context IS the function's memory; re-cloning it for the function
// would be a second copy the model doesn't charge), clones the outputs
// into the context (SetOutputs — the copy out of the function's
// memory), and moves that clone to the dispatcher without another copy
// (TakeOutputs). Under Options.ZeroCopy even those two clones become
// ownership moves: inputs are adopted (AdoptInputSet) and outputs
// handed off (AdoptOutputs + TakeOutputs), so the dispatcher — and
// through it the consuming statement's context, also across chunk
// boundaries within one batch — receives the producer's buffers.
//
// borrow, when non-nil, is the wire-memory lease of the request the
// instance belongs to (BatchRequest.Borrow): zero-copy input adoption
// then goes through AdoptInputSetBorrowed, so the context retains the
// lease until its Reset/Recycle and the decoder slabs the inputs alias
// cannot be recycled mid-execution.
func (p *Platform) runComputeIn(ctx *memctx.Context, f *registeredFunc, prepared *dvm.Program, inst instance, borrow *memctx.Region, sh *hotShard) (outs []memctx.Set, err error) {
	memBytes := funcMemBytes(f)
	for _, s := range inst {
		if p.opts.ZeroCopy {
			if err := ctx.AdoptInputSetBorrowed(s, borrow); err != nil {
				return nil, err
			}
			sh.zcHandoffs.Add(1)
			sh.zcBytes.Add(uint64(s.TotalBytes()))
		} else {
			if err := ctx.AddInputSet(s); err != nil {
				return nil, err
			}
			sh.copiedSets.Add(1)
			sh.copiedBytes.Add(uint64(s.TotalBytes()))
		}
	}
	charge := int64(ctx.CommittedBytes())
	p.chargeMemory(charge)
	defer p.releaseMemory(&charge)

	// Both modes read the context's sets in place. On the copying path
	// these are the context's private clones (the function may scribble
	// on them; the context is reset or recycled after harvest); under
	// ZeroCopy they are shared payloads the function must treat as
	// immutable.
	funcInputs := ctx.ShareInputSets
	if f.Go != nil {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("core: function %q crashed: %v", f.Name, r)
				outs = nil
			}
		}()
		outs, err = f.Go(funcInputs())
	} else {
		task := isolation.Task{
			Binary:   f.Binary,
			Prepared: prepared,
			MemBytes: memBytes,
			Inputs:   funcInputs(),
			GasLimit: f.GasLimit,
		}
		outs, err = p.backend.Execute(task)
	}
	if err != nil {
		return nil, err
	}
	// Positional rename for dvm outputs (out0, out1, ...), via the
	// rename table precomputed at registration.
	if f.Go == nil && f.outRename != nil {
		for i := range outs {
			if declared, ok := f.outRename[outs[i].Name]; ok {
				outs[i].Name = declared
			}
		}
	}
	if p.opts.ZeroCopy {
		if err := ctx.AdoptOutputs(outs); err != nil {
			return nil, err
		}
	} else if err := ctx.SetOutputs(outs); err != nil {
		return nil, err
	}
	ctx.Seal()
	newCharge := int64(ctx.CommittedBytes())
	p.chargeMemory(newCharge - charge)
	charge = newCharge
	taken, err := ctx.TakeOutputs()
	if err != nil {
		return nil, err
	}
	for _, s := range taken {
		if p.opts.ZeroCopy {
			sh.zcHandoffs.Add(1)
			sh.zcBytes.Add(uint64(s.TotalBytes()))
		} else {
			sh.copiedSets.Add(1)
			sh.copiedBytes.Add(uint64(s.TotalBytes()))
		}
	}
	return taken, nil
}

func (p *Platform) chargeMemory(delta int64) {
	cur := p.memCommitted.Add(delta)
	for {
		peak := p.memPeak.Load()
		if cur <= peak || p.memPeak.CompareAndSwap(peak, cur) {
			return
		}
	}
}

func (p *Platform) releaseMemory(charge *int64) {
	p.memCommitted.Add(-*charge)
}
