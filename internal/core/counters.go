package core

import (
	"sync/atomic"

	"dandelion/internal/stats"
)

// hotShard is one shard of the dispatcher's hot-path counters. Every
// counter a concurrent invoke touches lives here, grouped so one
// invocation's bookkeeping (an invocation tick, a handful of set/byte
// ticks, a context-provenance tick) lands on a single cache line owned
// de facto by the calling goroutine's shard. The trailing pad keeps
// neighboring shards off each other's lines (see stats.CacheLinePad).
//
// The memory gauges (memCommitted/memPeak on Platform) are deliberately
// NOT sharded: the peak is a maximum over the *summed* committed bytes,
// which needs a total order on the sum that per-shard counters cannot
// provide. They remain two plain atomics — one add and one usually
// conflict-free load per charge.
type hotShard struct {
	invocations atomic.Uint64
	batches     atomic.Uint64
	zcHandoffs  atomic.Uint64
	zcBytes     atomic.Uint64
	copiedSets  atomic.Uint64
	copiedBytes atomic.Uint64
	ctxReused   atomic.Uint64
	ctxFresh    atomic.Uint64
	_           [stats.CacheLinePad - 64]byte
}

// hotCounters is the sharded counter set: one hotShard per
// stats.ShardCount, picked per call by goroutine affinity. Increments
// are exact atomics — never sampled — so Stats() totals always equal
// completed work; only the (cold) Stats read pays the O(shards) merge.
type hotCounters struct {
	shards []hotShard
}

func newHotCounters() *hotCounters {
	return &hotCounters{shards: make([]hotShard, stats.ShardCount())}
}

// shard returns the calling goroutine's shard. Callers on a hot path
// should grab it once and apply all of an invocation's ticks to it.
// Code running on an engine should prefer shardAt with the engine's
// stable shard index (sched.Task.DoSharded) — same contention profile,
// no per-call derivation.
func (c *hotCounters) shard() *hotShard {
	return &c.shards[stats.ShardIndex(len(c.shards))]
}

// shardAt returns the shard for a stable per-engine index, folding it
// into range. Shard counts are powers of two, so the fold is a mask.
func (c *hotCounters) shardAt(i int) *hotShard {
	return &c.shards[i&(len(c.shards)-1)]
}

// hotTotals is the lazily merged view of every shard, consumed by
// Platform.Stats.
type hotTotals struct {
	invocations, batches    uint64
	zcHandoffs, zcBytes     uint64
	copiedSets, copiedBytes uint64
	ctxReused, ctxFresh     uint64
}

// merge sums the shards.
func (c *hotCounters) merge() hotTotals {
	var t hotTotals
	for i := range c.shards {
		s := &c.shards[i]
		t.invocations += s.invocations.Load()
		t.batches += s.batches.Load()
		t.zcHandoffs += s.zcHandoffs.Load()
		t.zcBytes += s.zcBytes.Load()
		t.copiedSets += s.copiedSets.Load()
		t.copiedBytes += s.copiedBytes.Load()
		t.ctxReused += s.ctxReused.Load()
		t.ctxFresh += s.ctxFresh.Load()
	}
	return t
}
