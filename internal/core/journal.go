// Durable-journal hooks in the dispatch and batch paths. A platform
// built with Options.Journal appends a record for every *keyed*
// invocation (begin at admit, end or chunk-completion at outcome) and
// for every admin reconfiguration, and replays the journal at
// construction: reconfig records re-apply through the
// ctlplane.Reconfigurer surface, completed-key records rebuild the
// dedup table. Unkeyed invocations journal nothing — with no
// idempotency key there is no identity to deduplicate against, and the
// unkeyed serving hot path stays journal-free.
//
// The dedup table itself is always on (even without a journal), so
// in-process retries of keyed work — the cluster manager re-running a
// chunk whose response was lost — are absorbed regardless of
// durability configuration.
package core

import (
	"context"

	"dandelion/internal/ctlplane"
	"dandelion/internal/journal"
	"dandelion/internal/memctx"
)

// Duplicate-detection errors, re-exported for callers that don't
// import internal/journal (the frontend maps ErrDuplicate to 409).
var (
	ErrDuplicate = journal.ErrDuplicate
	ErrInFlight  = journal.ErrInFlight
)

// journalAppend appends one record, counting outcomes; a nil journal
// or an in-progress replay journals nothing.
func (p *Platform) journalAppend(rec journal.Record) {
	if p.jrnl == nil || p.jreplaying.Load() {
		return
	}
	if _, err := p.jrnl.Append(rec); err != nil {
		p.jAppendErrs.Add(1)
		return
	}
	p.jAppends.Add(1)
}

// journalReconfig records one admin reconfiguration. Callers pass the
// *effective* values (read back after clamping) so replay reproduces
// the state, not the request.
func (p *Platform) journalReconfig(op journal.Op, tenant string, a, b int64) {
	p.journalAppend(journal.Record{Kind: journal.KindReconfig, Op: op, Tenant: tenant, A: a, B: b})
}

// replayJournal rebuilds state from the journal at construction:
// reconfig records re-apply through the Reconfigurer surface (the
// jreplaying flag keeps them from re-journaling), completed invocation
// and chunk records seed the dedup table (digest only — outputs died
// with the previous process), and bare begin records (in flight at the
// crash) are left retryable.
func (p *Platform) replayJournal() error {
	p.jreplaying.Store(true)
	defer p.jreplaying.Store(false)
	return p.jrnl.Replay(func(rec journal.Record) error {
		p.jReplayed++
		switch rec.Kind {
		case journal.KindReconfig:
			ctlplane.ApplyRecord(p, rec)
		case journal.KindInvokeEnd:
			if rec.A == 0 { // failed outcomes (A=1) stay retryable
				p.dedup.MarkReplayed(rec.Key, rec.Digest)
			}
		case journal.KindChunkDone:
			for i := int64(0); i < rec.B; i++ {
				p.dedup.MarkReplayed(journal.ChunkKey(rec.Key, int(rec.A+i)), rec.Digest)
			}
		}
		return nil
	})
}

// JournalReplayed reports how many records construction replayed.
func (p *Platform) JournalReplayed() uint64 { return p.jReplayed }

// DedupHits reports duplicate keyed invocations absorbed by the
// completed-key table.
func (p *Platform) DedupHits() uint64 { return p.dedup.Hits() }

// InvokeKeyed is InvokeKeyedAs under DefaultTenant.
func (p *Platform) InvokeKeyed(name, key string, inputs map[string][]memctx.Item) (map[string][]memctx.Item, error) {
	return p.InvokeKeyedAs(DefaultTenant, name, key, inputs)
}

// InvokeKeyedAs runs a composition under an idempotency key: a key
// that already completed answers from the dedup table (cached outputs,
// or ErrDuplicate when only the journaled digest survives) without
// re-executing; a key still executing answers ErrInFlight; a fresh key
// executes with begin/end journaling. An empty key degrades to
// InvokeAs.
func (p *Platform) InvokeKeyedAs(tenant, name, key string, inputs map[string][]memctx.Item) (map[string][]memctx.Item, error) {
	return p.InvokeKeyedAsCtx(context.Background(), tenant, name, key, inputs)
}

// InvokeKeyedAsCtx is InvokeKeyedAs under a caller context (see
// InvokeCtx). A keyed invocation that fails deadline-class releases its
// key like any other failure, so a retry with a fresh budget may
// re-execute.
func (p *Platform) InvokeKeyedAsCtx(ctx context.Context, tenant, name, key string, inputs map[string][]memctx.Item) (map[string][]memctx.Item, error) {
	if key == "" {
		return p.InvokeAsCtx(ctx, tenant, name, inputs)
	}
	if p.draining.Load() {
		return nil, ErrDraining
	}
	comp, err := p.reg.composition(name)
	if err != nil {
		return nil, err
	}
	if tenant == "" {
		tenant = DefaultTenant
	}
	outs, derr, execute := p.dedup.Reserve(key)
	if !execute {
		return outs, derr
	}
	p.journalAppend(journal.Record{
		Kind: journal.KindInvokeBegin, Tenant: tenant, Comp: name, Key: key,
		Digest: journal.DigestSets(inputs),
	})
	p.ctrs.shard().invocations.Add(1)
	outs, err = p.invoke(ctx, tenant, p.planFor(comp), inputs, 0)
	p.settleKey(tenant, name, key, outs, err)
	p.noteTimeout(err)
	return outs, err
}

// settleKey resolves one executed key: success completes it (dedup
// entry caches the outputs, journal gets the outcome digest), failure
// releases it so a retry may re-execute (the end record's A=1 keeps
// the audit trail without poisoning replay).
func (p *Platform) settleKey(tenant, name, key string, outs map[string][]memctx.Item, err error) {
	if err != nil {
		p.dedup.Release(key)
		p.journalAppend(journal.Record{
			Kind: journal.KindInvokeEnd, Tenant: tenant, Comp: name, Key: key,
			A: 1, Digest: journal.DigestOutcome(nil, err.Error()),
		})
		return
	}
	od := journal.DigestOutcome(outs, "")
	// Complete before journaling so a concurrent replayer observing the
	// record always finds the key in the table.
	p.dedup.Complete(key, od, outs)
	p.journalAppend(journal.Record{
		Kind: journal.KindInvokeEnd, Tenant: tenant, Comp: name, Key: key, Digest: od,
	})
}

// keyedBatch tracks the keyed requests of one InvokeBatch call.
type keyedBatch struct {
	skip     []bool // resolved from the dedup table; not executed
	executed []int  // request indices reserved for execution
	chunk    bool   // all requests form one contiguous chunk-key run
	base     string
	lo       int
}

// beginKeyedBatch resolves the batch's keyed requests against the
// dedup table before dispatch. Duplicates are answered in place and
// masked out of execution; fresh keys are reserved and journaled.
// Returns nil when the batch carries no keys (the journal-free hot
// path). A batch whose keys form one contiguous chunk run ("base#lo"
// .. "base#lo+n-1", as assigned by cluster.Manager) defers journaling
// to a single KindChunkDone record at completion instead of
// per-request begin/end pairs.
func (p *Platform) beginKeyedBatch(reqs []BatchRequest, results []BatchResult) *keyedBatch {
	anyKey := false
	allKeyed := true
	for i := range reqs {
		if reqs[i].Key != "" {
			anyKey = true
		} else {
			allKeyed = false
		}
	}
	if !anyKey {
		return nil
	}
	kb := &keyedBatch{skip: make([]bool, len(reqs))}
	if allKeyed {
		keys := make([]string, len(reqs))
		for i := range reqs {
			keys[i] = reqs[i].Key
		}
		kb.base, kb.lo, kb.chunk = journal.ChunkShape(keys)
	}
	for i := range reqs {
		key := reqs[i].Key
		if key == "" {
			continue
		}
		outs, derr, execute := p.dedup.Reserve(key)
		if !execute {
			results[i] = BatchResult{Outputs: outs, Err: derr}
			kb.skip[i] = true
			continue
		}
		kb.executed = append(kb.executed, i)
		if !kb.chunk {
			p.journalAppend(journal.Record{
				Kind: journal.KindInvokeBegin, Tenant: tenantOrDefault(reqs[i].Tenant),
				Comp: reqs[i].Composition, Key: key,
				Digest: journal.DigestSets(reqs[i].Inputs),
			})
		}
	}
	return kb
}

// finishKeyedBatch settles every executed key. A fully-successful
// chunk-shaped batch journals one KindChunkDone record covering the
// whole key run (combined outcome digest: XOR of the per-request
// digests); anything else settles per request.
func (p *Platform) finishKeyedBatch(kb *keyedBatch, reqs []BatchRequest, results []BatchResult) {
	if len(kb.executed) == 0 {
		return
	}
	if kb.chunk {
		allOK := true
		for _, i := range kb.executed {
			if results[i].Err != nil {
				allOK = false
				break
			}
		}
		if allOK {
			var combined uint64
			for _, i := range kb.executed {
				od := journal.DigestOutcome(results[i].Outputs, "")
				p.dedup.Complete(reqs[i].Key, od, results[i].Outputs)
				combined ^= od
			}
			p.journalAppend(journal.Record{
				Kind: journal.KindChunkDone, Tenant: tenantOrDefault(reqs[0].Tenant),
				Comp: reqs[0].Composition, Key: kb.base,
				A: int64(kb.lo), B: int64(len(reqs)), Digest: combined,
			})
			return
		}
	}
	for _, i := range kb.executed {
		p.settleKey(tenantOrDefault(reqs[i].Tenant), reqs[i].Composition, reqs[i].Key, results[i].Outputs, results[i].Err)
	}
}

func tenantOrDefault(t string) string {
	if t == "" {
		return DefaultTenant
	}
	return t
}
