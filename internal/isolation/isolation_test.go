package isolation

import (
	"errors"
	"math"
	"testing"

	"dandelion/internal/dvm"
	"dandelion/internal/memctx"
)

func echoTask(t *testing.T, prepared bool) Task {
	t.Helper()
	p := dvm.EchoProgram()
	task := Task{
		Binary:   p.Encode(),
		MemBytes: 4096,
		Inputs: []memctx.Set{{Name: "in", Items: []memctx.Item{
			{Name: "x", Data: []byte("payload")},
		}}},
	}
	if prepared {
		task.Prepared = p
	}
	return task
}

func allBackends(t *testing.T) []Backend {
	t.Helper()
	var out []Backend
	for _, n := range Names() {
		b, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("firecracker"); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("err = %v, want ErrUnknownBackend", err)
	}
}

func TestAllBackendsExecuteEcho(t *testing.T) {
	for _, b := range allBackends(t) {
		task := echoTask(t, false)
		if c, ok := b.(Compiler); ok {
			if err := c.Compile(task.Binary); err != nil {
				t.Fatalf("%s: compile: %v", b.Name(), err)
			}
		}
		out, err := b.Execute(task)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if len(out) != 1 || string(out[0].Items[0].Data) != "payload" {
			t.Fatalf("%s: output = %+v", b.Name(), out)
		}
	}
}

func TestAllBackendsPreparedPath(t *testing.T) {
	for _, b := range allBackends(t) {
		out, err := b.Execute(echoTask(t, true))
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if string(out[0].Items[0].Data) != "payload" {
			t.Fatalf("%s: bad output", b.Name())
		}
	}
}

func TestSyscallTrappedEverywhere(t *testing.T) {
	for _, b := range allBackends(t) {
		task := Task{Prepared: dvm.SyscallProgram(), MemBytes: 64}
		if _, err := b.Execute(task); !errors.Is(err, dvm.ErrSyscallAttempt) {
			t.Errorf("%s: err = %v, want syscall trap", b.Name(), err)
		}
	}
}

func TestGasPreemption(t *testing.T) {
	for _, b := range allBackends(t) {
		task := Task{Prepared: dvm.SpinProgram(), MemBytes: 64, GasLimit: 500}
		if _, err := b.Execute(task); !errors.Is(err, dvm.ErrGasExhausted) {
			t.Errorf("%s: err = %v, want gas exhaustion", b.Name(), err)
		}
	}
}

func TestMemoryFaultSurfaced(t *testing.T) {
	p, err := dvm.Assemble("li r1, 999999\nld r0, r1, 0\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range allBackends(t) {
		task := Task{Prepared: p, MemBytes: 64}
		if _, err := b.Execute(task); !errors.Is(err, dvm.ErrMemFault) {
			t.Errorf("%s: err = %v, want memory fault", b.Name(), err)
		}
	}
}

func TestUncachedDecodeRejectsGarbage(t *testing.T) {
	for _, name := range []string{"kvm", "process", "cheri"} {
		b, _ := New(name)
		if _, err := b.Execute(Task{Binary: []byte("garbage"), MemBytes: 64}); err == nil {
			t.Errorf("%s: garbage binary accepted", name)
		}
	}
}

func TestRWasmRequiresCompilation(t *testing.T) {
	b, _ := New("rwasm")
	task := echoTask(t, false)
	if _, err := b.Execute(task); !errors.Is(err, ErrNotCompiled) {
		t.Fatalf("err = %v, want ErrNotCompiled", err)
	}
	if err := b.(Compiler).Compile(task.Binary); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Execute(task); err != nil {
		t.Fatalf("after compile: %v", err)
	}
	if err := b.(Compiler).Compile([]byte("junk")); err == nil {
		t.Fatal("rwasm compiled garbage")
	}
}

func TestTable1Totals(t *testing.T) {
	// The Morello profiles must reproduce the Table 1 totals exactly.
	cases := []struct {
		p    CostProfile
		want float64
	}{
		{MorelloCheri, 89}, {MorelloRWasm, 241}, {MorelloProcess, 486}, {MorelloKVM, 889},
	}
	for _, c := range cases {
		if got := c.p.TotalUS(); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("total = %v, want %v", got, c.want)
		}
	}
}

func TestX86TotalsMatchPaper(t *testing.T) {
	// §7.2: "the total latencies of the rWasm, process, and KVM backends
	// are 109, 539, and 218 microseconds" on the default kernel.
	cases := []struct {
		p    CostProfile
		want float64
	}{
		{X86RWasm, 109}, {X86Process, 539}, {X86KVM, 218},
	}
	for _, c := range cases {
		if got := c.p.TotalUS(); math.Abs(got-c.want) > 0.5 {
			t.Errorf("x86 total = %v, want %v", got, c.want)
		}
	}
}

func TestCachedColdStartCheaper(t *testing.T) {
	for _, p := range []CostProfile{MorelloCheri, MorelloRWasm, MorelloProcess, MorelloKVM} {
		if p.ColdStartUS(true) >= p.ColdStartUS(false) {
			t.Errorf("cached cold start not cheaper: %+v", p)
		}
	}
}

func TestBackendOrderFastestToSlowest(t *testing.T) {
	// Table 1's headline: cheri < rwasm < process < kvm on Morello.
	var prev float64
	for i, n := range Names() {
		b, _ := New(n)
		tot := b.Cost().TotalUS()
		if i > 0 && tot <= prev {
			t.Fatalf("backend order violated at %s", n)
		}
		prev = tot
	}
}

func TestComputeFactorOnlyRWasmSlower(t *testing.T) {
	for _, b := range allBackends(t) {
		f := b.Cost().ComputeFactor
		if b.Name() == "rwasm" {
			if f <= 1 {
				t.Errorf("rwasm compute factor = %v, want > 1", f)
			}
		} else if f != 1 {
			t.Errorf("%s compute factor = %v, want 1", b.Name(), f)
		}
	}
}

func TestProcessBackendConfinesPanic(t *testing.T) {
	// A nil Prepared with a nil Binary makes dvm.Decode fail — but a
	// panic inside user code must not take down the engine. Build a task
	// whose program is valid but provokes an interpreter-level error
	// surfaced as an error, then assert the goroutine boundary works by
	// running many executions concurrently.
	b, _ := New("process")
	done := make(chan bool, 16)
	for i := 0; i < 16; i++ {
		go func() {
			_, err := b.Execute(Task{Prepared: dvm.SyscallProgram(), MemBytes: 64})
			done <- err != nil
		}()
	}
	for i := 0; i < 16; i++ {
		if !<-done {
			t.Fatal("expected failures")
		}
	}
}
