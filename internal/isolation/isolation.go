// Package isolation provides Dandelion's four compute-engine sandbox
// backends (§6.2 of the paper): KVM-style lightweight VMs, ptrace'd
// processes, CHERI capability threads, and rWasm compile-time isolation.
//
// On the paper's hardware these backends differ in *mechanism*; to the
// execution system they are interchangeable implementations of one
// interface: prepare isolation around a memory context, run the function
// to completion, harvest outputs. This repository enforces the isolation
// semantics in software (dvm's memory bounds, syscall trapping, and gas
// preemption) and attaches to each backend the cold-start cost profile
// measured in Table 1 so the performance-model layer reproduces the
// paper's latency structure.
package isolation

import (
	"errors"
	"fmt"
	"sync"

	"dandelion/internal/dvm"
	"dandelion/internal/memctx"
)

// Task is one compute-function execution request handed to a backend.
type Task struct {
	// Binary is the registered function binary (dvm encoding). Backends
	// that compile at registration time (rWasm) ignore it in favour of
	// Prepared.
	Binary []byte
	// Prepared is an optional pre-decoded program (the in-memory binary
	// cache of §7.4). When nil, the backend decodes Binary on the
	// critical path, the "load from disk / uncached" configuration.
	Prepared *dvm.Program
	// MemBytes bounds the function's memory region.
	MemBytes int
	// Inputs are the function's input sets.
	Inputs []memctx.Set
	// GasLimit preempts runaway functions (0 = default).
	GasLimit int64
}

// Backend executes compute functions under one isolation mechanism.
type Backend interface {
	// Name identifies the backend ("kvm", "process", "cheri", "rwasm").
	Name() string
	// Execute runs the task to completion and returns its output sets.
	Execute(t Task) ([]memctx.Set, error)
	// Cost reports the backend's cold-start cost profile.
	Cost() CostProfile
}

// CostProfile is the per-phase sandbox creation latency breakdown from
// Table 1 of the paper, in microseconds, plus execution characteristics
// used by the performance model.
type CostProfile struct {
	MarshalUS  float64 // marshal requests
	LoadUS     float64 // load binary from disk
	TransferUS float64 // transfer input
	ExecuteUS  float64 // execute function (sandbox entry/exit overhead)
	OutputUS   float64 // get/send output
	OtherUS    float64 // everything else
	// ComputeFactor scales pure compute time relative to native code
	// (rWasm's transpiled code runs slower, §7.3).
	ComputeFactor float64
	// CachedLoadUS replaces LoadUS when the binary is already in the
	// in-memory cache (§7.4 cached vs. uncached).
	CachedLoadUS float64
}

// TotalUS is the unloaded cold-start latency (the Table 1 "Total" row).
func (c CostProfile) TotalUS() float64 {
	return c.MarshalUS + c.LoadUS + c.TransferUS + c.ExecuteUS + c.OutputUS + c.OtherUS
}

// ColdStartUS reports cold-start latency with or without the binary
// cache.
func (c CostProfile) ColdStartUS(cached bool) float64 {
	if cached {
		return c.TotalUS() - c.LoadUS + c.CachedLoadUS
	}
	return c.TotalUS()
}

// Profiles measured on the Arm Morello board (Table 1).
var (
	MorelloCheri = CostProfile{
		MarshalUS: 12, LoadUS: 29, TransferUS: 2, ExecuteUS: 5,
		OutputUS: 9, OtherUS: 32, ComputeFactor: 1.0, CachedLoadUS: 4,
	}
	MorelloRWasm = CostProfile{
		MarshalUS: 15, LoadUS: 147, TransferUS: 2, ExecuteUS: 20,
		OutputUS: 12, OtherUS: 45, ComputeFactor: 2.6, CachedLoadUS: 18,
	}
	MorelloProcess = CostProfile{
		MarshalUS: 12, LoadUS: 54, TransferUS: 6, ExecuteUS: 371,
		OutputUS: 9, OtherUS: 34, ComputeFactor: 1.0, CachedLoadUS: 7,
	}
	MorelloKVM = CostProfile{
		MarshalUS: 30, LoadUS: 194, TransferUS: 2, ExecuteUS: 536,
		OutputUS: 25, OtherUS: 102, ComputeFactor: 1.0, CachedLoadUS: 24,
	}
)

// Profiles on the default x86 server with Linux 5.15 (§7.2 reports
// totals of 109, 539, and 218 µs for rWasm, process, and KVM). Phase
// breakdowns are scaled from the Morello profiles to match those totals.
var (
	X86RWasm   = scaleProfile(MorelloRWasm, 109.0/241.0)
	X86Process = scaleProfile(MorelloProcess, 539.0/486.0)
	X86KVM     = scaleProfile(MorelloKVM, 218.0/889.0)
)

func scaleProfile(p CostProfile, f float64) CostProfile {
	return CostProfile{
		MarshalUS: p.MarshalUS * f, LoadUS: p.LoadUS * f,
		TransferUS: p.TransferUS * f, ExecuteUS: p.ExecuteUS * f,
		OutputUS: p.OutputUS * f, OtherUS: p.OtherUS * f,
		ComputeFactor: p.ComputeFactor, CachedLoadUS: p.CachedLoadUS * f,
	}
}

// ErrUnknownBackend reports a request for an unregistered backend name.
var ErrUnknownBackend = errors.New("isolation: unknown backend")

// New constructs a backend by name using the Morello cost profiles
// ("kvm", "process", "cheri", "rwasm").
func New(name string) (Backend, error) {
	switch name {
	case "kvm":
		return &kvmBackend{profile: MorelloKVM}, nil
	case "process":
		return &processBackend{profile: MorelloProcess}, nil
	case "cheri":
		return &cheriBackend{profile: MorelloCheri}, nil
	case "rwasm":
		return &rwasmBackend{profile: MorelloRWasm}, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownBackend, name)
}

// Names lists the available backend names.
func Names() []string { return []string{"cheri", "rwasm", "process", "kvm"} }

// loadProgram resolves the task's program, decoding the binary when no
// prepared program is supplied (the uncached path).
func loadProgram(t Task) (*dvm.Program, error) {
	if t.Prepared != nil {
		return t.Prepared, nil
	}
	return dvm.Decode(t.Binary)
}

// kvmBackend models the minimal-hypervisor backend: each function runs
// in a fresh "guest physical address space" (a new memory region) with
// identity mapping; vCPU state is reset between launches by reusing the
// interpreter with a cleared register file (dvm.Run always starts from
// zeroed state, matching the Virtines-style structure reuse).
type kvmBackend struct {
	profile CostProfile
}

func (b *kvmBackend) Name() string      { return "kvm" }
func (b *kvmBackend) Cost() CostProfile { return b.profile }

func (b *kvmBackend) Execute(t Task) ([]memctx.Set, error) {
	p, err := loadProgram(t)
	if err != nil {
		return nil, err
	}
	res, err := dvm.Run(p, t.MemBytes, t.Inputs, t.GasLimit)
	if err != nil {
		return nil, fmt.Errorf("kvm: vmexit with fault: %w", err)
	}
	return res.Outputs, nil
}

// processBackend models ptrace'd process isolation: the function runs in
// a separate goroutine ("process") communicating only through the task's
// declared inputs and outputs; any panic in user code is confined to
// that goroutine and surfaces as a function failure, like a crashed
// child process.
type processBackend struct {
	profile CostProfile
}

func (b *processBackend) Name() string      { return "process" }
func (b *processBackend) Cost() CostProfile { return b.profile }

func (b *processBackend) Execute(t Task) ([]memctx.Set, error) {
	p, err := loadProgram(t)
	if err != nil {
		return nil, err
	}
	type outcome struct {
		res *dvm.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: fmt.Errorf("process: function crashed: %v", r)}
			}
		}()
		res, err := dvm.Run(p, t.MemBytes, t.Inputs, t.GasLimit)
		ch <- outcome{res: res, err: err}
	}()
	o := <-ch
	if o.err != nil {
		if errors.Is(o.err, dvm.ErrSyscallAttempt) {
			// ptrace caught the syscall: terminate and notify (§6.2).
			return nil, fmt.Errorf("process: terminated by ptrace: %w", o.err)
		}
		return nil, fmt.Errorf("process: %w", o.err)
	}
	return o.res.Outputs, nil
}

// cheriBackend models CHERI hybrid-mode capability isolation: functions
// run as threads within the Dandelion process; the "default data
// capability" is the bounds-checked function memory dvm enforces. No
// new thread of execution is spawned on the critical path.
type cheriBackend struct {
	profile CostProfile
}

func (b *cheriBackend) Name() string      { return "cheri" }
func (b *cheriBackend) Cost() CostProfile { return b.profile }

func (b *cheriBackend) Execute(t Task) ([]memctx.Set, error) {
	p, err := loadProgram(t)
	if err != nil {
		return nil, err
	}
	res, err := dvm.Run(p, t.MemBytes, t.Inputs, t.GasLimit)
	if err != nil {
		return nil, fmt.Errorf("cheri: capability fault: %w", err)
	}
	return res.Outputs, nil
}

// rwasmBackend models compile-time software isolation: binaries are
// transpiled and validated once at registration (Compile), and Execute
// refuses binaries that have not gone through that step — mirroring how
// the real backend only loads pre-compiled shared libraries.
type rwasmBackend struct {
	profile CostProfile

	mu       sync.Mutex
	compiled map[string]*dvm.Program
}

func (b *rwasmBackend) Name() string      { return "rwasm" }
func (b *rwasmBackend) Cost() CostProfile { return b.profile }

// ErrNotCompiled reports an rWasm execution of an unregistered binary.
var ErrNotCompiled = errors.New("rwasm: binary was not compiled at registration time")

// Compile transpiles and validates a binary, caching the result. It
// stands in for the Wasm → safe Rust → shared library pipeline.
func (b *rwasmBackend) Compile(binary []byte) error {
	p, err := dvm.Decode(binary)
	if err != nil {
		return fmt.Errorf("rwasm: transpile failed: %w", err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.compiled == nil {
		b.compiled = map[string]*dvm.Program{}
	}
	b.compiled[string(binary)] = p
	return nil
}

func (b *rwasmBackend) Execute(t Task) ([]memctx.Set, error) {
	var p *dvm.Program
	if t.Prepared != nil {
		p = t.Prepared
	} else {
		b.mu.Lock()
		p = b.compiled[string(t.Binary)]
		b.mu.Unlock()
		if p == nil {
			return nil, ErrNotCompiled
		}
	}
	res, err := dvm.Run(p, t.MemBytes, t.Inputs, t.GasLimit)
	if err != nil {
		return nil, fmt.Errorf("rwasm: %w", err)
	}
	return res.Outputs, nil
}

// Compiler is implemented by backends that require registration-time
// compilation.
type Compiler interface {
	Compile(binary []byte) error
}
