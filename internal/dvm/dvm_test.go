package dvm

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"dandelion/internal/memctx"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func i64s(vals ...int64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], uint64(v))
	}
	return out
}

func TestArithmetic(t *testing.T) {
	p := mustAssemble(t, `
		li r1, 6
		li r2, 7
		mul r3, r1, r2
		li r4, 0
		st r4, r3, 0
		li r1, 0
		li r2, 0
		li r3, 8
		li r4, 0
		host 5
		halt
	`)
	res, err := Run(p, 1024, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Error("expected halt")
	}
	got := int64(binary.LittleEndian.Uint64(res.Outputs[0].Items[0].Data))
	if got != 42 {
		t.Fatalf("result = %d, want 42", got)
	}
}

func TestFallOffEndIsCleanStop(t *testing.T) {
	p := mustAssemble(t, "li r0, 1\n")
	res, err := Run(p, 64, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted {
		t.Error("fall-off-end should not report Halted")
	}
}

func TestSyscallTraps(t *testing.T) {
	_, err := Run(SyscallProgram(), 64, nil, 0)
	if !errors.Is(err, ErrSyscallAttempt) {
		t.Fatalf("err = %v, want ErrSyscallAttempt", err)
	}
}

func TestGasExhaustion(t *testing.T) {
	_, err := Run(SpinProgram(), 64, nil, 1000)
	if !errors.Is(err, ErrGasExhausted) {
		t.Fatalf("err = %v, want ErrGasExhausted", err)
	}
}

func TestMemoryBounds(t *testing.T) {
	cases := []string{
		"li r1, 100\nld r0, r1, 0\nhalt\n", // read past end (mem=64)
		"li r1, -9\nld r0, r1, 0\nhalt\n",  // negative address
		"li r1, 60\nst r1, r1, 0\nhalt\n",  // 8-byte store crossing end
		"li r1, 64\nstb r1, r1, 0\nhalt\n", // byte store at end
	}
	for _, src := range cases {
		p := mustAssemble(t, src)
		if _, err := Run(p, 64, nil, 0); !errors.Is(err, ErrMemFault) {
			t.Errorf("program %q err = %v, want ErrMemFault", src, err)
		}
	}
}

func TestDivByZero(t *testing.T) {
	for _, src := range []string{
		"li r1, 5\nli r2, 0\ndiv r0, r1, r2\nhalt\n",
		"li r1, 5\nli r2, 0\nmod r0, r1, r2\nhalt\n",
	} {
		p := mustAssemble(t, src)
		if _, err := Run(p, 64, nil, 0); !errors.Is(err, ErrDivByZero) {
			t.Errorf("err = %v, want ErrDivByZero", err)
		}
	}
}

func TestCallRet(t *testing.T) {
	p := mustAssemble(t, `
		li r1, 10
		call double
		call double
		li r4, 0
		st r4, r1, 0
		li r1, 0
		li r2, 0
		li r3, 8
		li r4, 0
		host 5
		halt
	double:
		add r1, r1, r1
		ret
	`)
	res, err := Run(p, 64, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := int64(binary.LittleEndian.Uint64(res.Outputs[0].Items[0].Data))
	if got != 40 {
		t.Fatalf("result = %d, want 40", got)
	}
}

func TestRetUnderflow(t *testing.T) {
	p := mustAssemble(t, "ret\n")
	if _, err := Run(p, 64, nil, 0); !errors.Is(err, ErrStackUnderflow) {
		t.Fatalf("err = %v, want ErrStackUnderflow", err)
	}
}

func TestCallStackOverflow(t *testing.T) {
	p := mustAssemble(t, "f: call f\n")
	if _, err := Run(p, 64, nil, 0); !errors.Is(err, ErrStackOverflow) {
		t.Fatalf("err = %v, want ErrStackOverflow", err)
	}
}

func TestHostReadWrite(t *testing.T) {
	in := []memctx.Set{{Name: "args", Items: []memctx.Item{{Name: "x", Data: []byte("abc")}}}}
	res, err := Run(EchoProgram(), 1024, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 1 || string(res.Outputs[0].Items[0].Data) != "abc" {
		t.Fatalf("echo output = %+v", res.Outputs)
	}
}

func TestHostBadIndices(t *testing.T) {
	cases := []string{
		"li r1, 5\nhost 2\nhalt\n",           // set index out of range
		"li r1, 0\nli r2, 9\nhost 3\nhalt\n", // item index out of range
		"host 99\nhalt\n",                    // unknown call
		"li r1, -1\nhost 2\nhalt\n",          // negative set
	}
	in := []memctx.Set{{Name: "s", Items: []memctx.Item{{Name: "i", Data: []byte("x")}}}}
	for _, src := range cases {
		p := mustAssemble(t, src)
		if _, err := Run(p, 64, in, 0); !errors.Is(err, ErrBadHostCall) {
			t.Errorf("program %q err = %v, want ErrBadHostCall", src, err)
		}
	}
}

func TestHostReadIntoBadMemory(t *testing.T) {
	// Read item into an address beyond memory.
	src := "li r1, 0\nli r2, 0\nli r3, 1000\nhost 4\nhalt\n"
	in := []memctx.Set{{Name: "s", Items: []memctx.Item{{Name: "i", Data: []byte("xyz")}}}}
	p := mustAssemble(t, src)
	if _, err := Run(p, 64, in, 0); !errors.Is(err, ErrMemFault) {
		t.Fatalf("err = %v, want ErrMemFault", err)
	}
}

func TestHostNames(t *testing.T) {
	src := `
		li r1, 0
		li r2, 0
		host 6          ; set name -> mem[0..]
		mov r5, r0
		li r1, 0
		li r2, 0
		li r3, 32
		host 7          ; item name -> mem[32..]
		; emit set name as output
		li r1, 0
		li r2, 0
		mov r3, r5
		li r4, 0
		host 5
		halt
	`
	in := []memctx.Set{{Name: "inputs", Items: []memctx.Item{{Name: "file1", Data: nil}}}}
	p := mustAssemble(t, src)
	res, err := Run(p, 128, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Outputs[0].Items[0].Data) != "inputs" {
		t.Fatalf("set name = %q", res.Outputs[0].Items[0].Data)
	}
}

func TestDataSegment(t *testing.T) {
	p := mustAssemble(t, `
		li r1, 0
		li r2, 0
		li r3, 5
		li r4, 0
		host 5
		halt
		.data "hello"
	`)
	res, err := Run(p, 64, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Outputs[0].Items[0].Data) != "hello" {
		t.Fatalf("data = %q", res.Outputs[0].Items[0].Data)
	}
}

func TestDataSegmentTooBig(t *testing.T) {
	p := &Program{Data: make([]byte, 100)}
	if _, err := Run(p, 64, nil, 0); !errors.Is(err, ErrMemFault) {
		t.Fatalf("err = %v, want ErrMemFault", err)
	}
}

func TestMatMul(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		a := make([]int64, n*n)
		b := make([]int64, n*n)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := range a {
			a[i] = int64(rng.Intn(100))
			b[i] = int64(rng.Intn(100))
		}
		want := make([]int64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var acc int64
				for k := 0; k < n; k++ {
					acc += a[i*n+k] * b[k*n+j]
				}
				want[i*n+j] = acc
			}
		}
		in := []memctx.Set{{Name: "m", Items: []memctx.Item{
			{Name: "A", Data: i64s(a...)},
			{Name: "B", Data: i64s(b...)},
		}}}
		res, err := Run(MatMulProgram(n), MatMulMemBytes(n), in, 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := res.Outputs[0].Items[0].Data
		for i, w := range want {
			g := int64(binary.LittleEndian.Uint64(got[i*8:]))
			if g != w {
				t.Fatalf("n=%d: C[%d] = %d, want %d", n, i, g, w)
			}
		}
	}
}

func TestReduce(t *testing.T) {
	vals := []int64{5, -3, 42, 0, 17}
	in := []memctx.Set{{Name: "arr", Items: []memctx.Item{{Name: "a", Data: i64s(vals...)}}}}
	res, err := Run(ReduceProgram(), 4096, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outputs[0].Items[0].Data
	sum := int64(binary.LittleEndian.Uint64(out[0:]))
	mn := int64(binary.LittleEndian.Uint64(out[8:]))
	mx := int64(binary.LittleEndian.Uint64(out[16:]))
	if sum != 61 || mn != -3 || mx != 42 {
		t.Fatalf("sum/min/max = %d/%d/%d, want 61/-3/42", sum, mn, mx)
	}
}

func TestReduceEmpty(t *testing.T) {
	in := []memctx.Set{{Name: "arr", Items: []memctx.Item{{Name: "a", Data: nil}}}}
	res, err := Run(ReduceProgram(), 4096, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outputs[0].Items[0].Data
	for i := 0; i < 24; i++ {
		if out[i] != 0 {
			t.Fatalf("empty reduce non-zero: %v", out)
		}
	}
}

// Property: dvm matmul agrees with a Go reference for random matrices.
func TestMatMulProperty(t *testing.T) {
	prog := MatMulProgram(3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]int64, 9)
		b := make([]int64, 9)
		for i := range a {
			a[i] = int64(rng.Intn(2001) - 1000)
			b[i] = int64(rng.Intn(2001) - 1000)
		}
		in := []memctx.Set{{Name: "m", Items: []memctx.Item{
			{Name: "A", Data: i64s(a...)}, {Name: "B", Data: i64s(b...)},
		}}}
		res, err := Run(prog, MatMulMemBytes(3), in, 0)
		if err != nil {
			return false
		}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				var acc int64
				for k := 0; k < 3; k++ {
					acc += a[i*3+k] * b[k*3+j]
				}
				g := int64(binary.LittleEndian.Uint64(res.Outputs[0].Items[0].Data[(i*3+j)*8:]))
				if g != acc {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
