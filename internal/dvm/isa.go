// Package dvm implements the Dandelion virtual machine: a small
// register-based bytecode VM used to run untrusted compute functions.
//
// In the paper, compute functions are native binaries executing inside a
// hardware sandbox (KVM, CHERI, process, or rWasm). This repository has
// no sandboxing hardware, so user code is expressed as dvm bytecode and
// interpreted with the same guarantees enforced in software:
//
//   - hard memory bounds (every load/store is checked against the
//     function's memory region — the memctx limit),
//   - no system calls (the SYSCALL opcode exists so programs can *attempt*
//     one; the VM traps and aborts the function, exactly like the
//     ptrace-based process backend in §6.2),
//   - run-to-completion with a gas limit standing in for the engine's
//     timeout preemption (§5, footnote 2),
//   - I/O only through the set/item host interface, which mirrors the
//     dlibc lower-level system interface of §4.1.
//
// The package provides the instruction set, a binary encoding (so the
// registry can store "function binaries" and the load-from-disk path is
// real), an assembler/disassembler, and the interpreter.
package dvm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Op is a dvm opcode.
type Op uint8

// Instruction set. Arithmetic is three-address over 16 general registers.
const (
	OpHalt    Op = iota // stop successfully
	OpLi                // rd <- imm
	OpMov               // rd <- rs
	OpAdd               // rd <- rs + rt
	OpSub               // rd <- rs - rt
	OpMul               // rd <- rs * rt
	OpDiv               // rd <- rs / rt (trap on zero)
	OpMod               // rd <- rs % rt (trap on zero)
	OpAnd               // rd <- rs & rt
	OpOr                // rd <- rs | rt
	OpXor               // rd <- rs ^ rt
	OpShl               // rd <- rs << (rt & 63)
	OpShr               // rd <- rs >> (rt & 63) (logical)
	OpAddi              // rd <- rs + imm
	OpMuli              // rd <- rs * imm
	OpLd                // rd <- mem64[rs + imm]
	OpSt                // mem64[rd + imm] <- rs
	OpLdb               // rd <- mem8[rs + imm]
	OpStb               // mem8[rd + imm] <- rs (low byte)
	OpJmp               // pc <- imm
	OpBeq               // if rs == rt: pc <- imm
	OpBne               // if rs != rt: pc <- imm
	OpBlt               // if rs < rt (signed): pc <- imm
	OpBge               // if rs >= rt (signed): pc <- imm
	OpCall              // push pc+1 on call stack, pc <- imm
	OpRet               // pop pc from call stack
	OpHost              // host interface call #imm (set/item I/O)
	OpSyscall           // attempt an OS system call: always traps
	opMax
)

var opNames = [...]string{
	OpHalt: "halt", OpLi: "li", OpMov: "mov", OpAdd: "add", OpSub: "sub",
	OpMul: "mul", OpDiv: "div", OpMod: "mod", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpShl: "shl", OpShr: "shr", OpAddi: "addi", OpMuli: "muli",
	OpLd: "ld", OpSt: "st", OpLdb: "ldb", OpStb: "stb", OpJmp: "jmp",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpCall: "call", OpRet: "ret", OpHost: "host", OpSyscall: "syscall",
}

// String returns the assembler mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// NumRegs is the number of general-purpose registers.
const NumRegs = 16

// Instr is one decoded instruction. Rd/Rs/Rt are register numbers; Imm is
// the immediate operand (value, memory offset, branch target, or host
// call number depending on the opcode).
type Instr struct {
	Op         Op
	Rd, Rs, Rt uint8
	Imm        int64
}

// Program is a sequence of instructions plus an optional read-only data
// segment mapped at the top of function memory.
type Program struct {
	Code []Instr
	Data []byte
}

// Validate checks static well-formedness: register numbers in range,
// branch/call targets inside the code segment, known opcodes.
func (p *Program) Validate() error {
	n := int64(len(p.Code))
	for i, ins := range p.Code {
		if ins.Op >= opMax {
			return fmt.Errorf("dvm: instruction %d: unknown opcode %d", i, ins.Op)
		}
		if ins.Rd >= NumRegs || ins.Rs >= NumRegs || ins.Rt >= NumRegs {
			return fmt.Errorf("dvm: instruction %d: register out of range", i)
		}
		switch ins.Op {
		case OpJmp, OpBeq, OpBne, OpBlt, OpBge, OpCall:
			if ins.Imm < 0 || ins.Imm >= n {
				return fmt.Errorf("dvm: instruction %d: branch target %d outside code [0,%d)", i, ins.Imm, n)
			}
		}
	}
	return nil
}

// Binary encoding: magic, version, code length, instructions (fixed
// 12-byte records), data segment length, data bytes.
var magic = [4]byte{'D', 'V', 'M', '1'}

// ErrBadBinary reports a malformed encoded program.
var ErrBadBinary = errors.New("dvm: malformed binary")

// Encode serializes the program to the dvm binary format.
func (p *Program) Encode() []byte {
	out := make([]byte, 0, 4+4+len(p.Code)*12+4+len(p.Data))
	out = append(out, magic[:]...)
	var tmp [12]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(p.Code)))
	out = append(out, tmp[:4]...)
	for _, ins := range p.Code {
		tmp[0] = byte(ins.Op)
		tmp[1] = ins.Rd
		tmp[2] = ins.Rs
		tmp[3] = ins.Rt
		binary.LittleEndian.PutUint64(tmp[4:], uint64(ins.Imm))
		out = append(out, tmp[:]...)
	}
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(p.Data)))
	out = append(out, tmp[:4]...)
	out = append(out, p.Data...)
	return out
}

// Decode parses a dvm binary produced by Encode.
func Decode(b []byte) (*Program, error) {
	if len(b) < 8 || b[0] != magic[0] || b[1] != magic[1] || b[2] != magic[2] || b[3] != magic[3] {
		return nil, fmt.Errorf("%w: bad magic", ErrBadBinary)
	}
	n := int(binary.LittleEndian.Uint32(b[4:8]))
	off := 8
	if n < 0 || off+n*12 > len(b) {
		return nil, fmt.Errorf("%w: truncated code segment", ErrBadBinary)
	}
	p := &Program{Code: make([]Instr, n)}
	for i := 0; i < n; i++ {
		rec := b[off : off+12]
		p.Code[i] = Instr{
			Op: Op(rec[0]), Rd: rec[1], Rs: rec[2], Rt: rec[3],
			Imm: int64(binary.LittleEndian.Uint64(rec[4:])),
		}
		off += 12
	}
	if off+4 > len(b) {
		return nil, fmt.Errorf("%w: missing data header", ErrBadBinary)
	}
	dn := int(binary.LittleEndian.Uint32(b[off : off+4]))
	off += 4
	if dn < 0 || off+dn != len(b) {
		return nil, fmt.Errorf("%w: data segment size mismatch", ErrBadBinary)
	}
	p.Data = append([]byte(nil), b[off:]...)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
