package dvm

import "fmt"

// This file holds the compute-function programs used across the paper's
// microbenchmarks: N×N int64 matrix multiplication (Figures 2, 5, 6) and
// the sum/min/max reduction over a fetched array (the "fetch and compute"
// phase workload of §7.4/§7.5).

// MatMulProgram returns a dvm program that multiplies two n×n int64
// matrices. Input: set 0, item 0 = A, item 1 = B, both row-major
// little-endian int64. Output: set 0, item 0 = C.
//
// Memory layout: A at 0, B at n²·8, C at 2·n²·8.
func MatMulProgram(n int) *Program {
	nn8 := int64(n) * int64(n) * 8
	src := fmt.Sprintf(`
; r15 = n
        li   r15, %d
; load A (set 0 item 0) to 0, B (item 1) to %d
        li   r1, 0
        li   r2, 0
        li   r3, 0
        host 4
        li   r2, 1
        li   r3, %d
        host 4
; loop i (r10), j (r11), k (r12)
        li   r10, 0
iloop:  bge  r10, r15, done
        li   r11, 0
jloop:  bge  r11, r15, inext
        li   r13, 0          ; acc
        li   r12, 0
kloop:  bge  r12, r15, kdone
        ; a = A[i*n+k]
        mul  r4, r10, r15
        add  r4, r4, r12
        muli r4, r4, 8
        ld   r5, r4, 0
        ; b = B[k*n+j]
        mul  r4, r12, r15
        add  r4, r4, r11
        muli r4, r4, 8
        ld   r6, r4, %d
        mul  r5, r5, r6
        add  r13, r13, r5
        addi r12, r12, 1
        jmp  kloop
kdone:  ; C[i*n+j] = acc
        mul  r4, r10, r15
        add  r4, r4, r11
        muli r4, r4, 8
        addi r4, r4, %d
        st   r4, r13, 0
        addi r11, r11, 1
        jmp  jloop
inext:  addi r10, r10, 1
        jmp  iloop
done:   ; write C as output set 0
        li   r1, 0
        li   r2, %d
        li   r3, %d
        li   r4, 0
        host 5
        halt
`, n, nn8, nn8, nn8, 2*nn8, 2*nn8, nn8)
	p, err := Assemble(src)
	if err != nil {
		panic("dvm: internal matmul program failed to assemble: " + err.Error())
	}
	return p
}

// MatMulMemBytes reports the memory a MatMulProgram(n) execution needs.
func MatMulMemBytes(n int) int { return 3*n*n*8 + 64 }

// ReduceProgram returns a program computing sum, min, and max over an
// int64 array supplied as input set 0 item 0. Output set 0 item 0 is
// three int64 words: sum, min, max. This is the "compute" half of the
// fetch-and-compute phase microbenchmark (§7.4).
func ReduceProgram() *Program {
	src := `
; load array to address 0, length (bytes) in r7
        li   r1, 0
        li   r2, 0
        li   r3, 0
        host 4
        mov  r7, r0          ; byte length
        li   r8, 8
        div  r7, r7, r8      ; element count
        li   r10, 0          ; index
        li   r11, 0          ; sum
        li   r12, 0          ; min
        li   r13, 0          ; max
        ; handle empty array: outputs stay zero
        beq  r7, r10, emit
        ld   r12, r10, 0     ; min = a[0]
        mov  r13, r12        ; max = a[0]
loop:   bge  r10, r7, emit
        muli r4, r10, 8
        ld   r5, r4, 0
        add  r11, r11, r5
        blt  r5, r12, newmin
chkmax: blt  r13, r5, newmax
cont:   addi r10, r10, 1
        jmp  loop
newmin: mov  r12, r5
        jmp  chkmax
newmax: mov  r13, r5
        jmp  cont
emit:   ; store results after the array
        muli r6, r7, 8
        st   r6, r11, 0
        st   r6, r12, 8
        st   r6, r13, 16
        li   r1, 0
        mov  r2, r6
        li   r3, 24
        li   r4, 0
        host 5
        halt
`
	p, err := Assemble(src)
	if err != nil {
		panic("dvm: internal reduce program failed to assemble: " + err.Error())
	}
	return p
}

// EchoProgram returns a program that copies input set 0 item 0 to output
// set 0 unchanged — the "hello world" / 1x1 identity-style workload used
// for sandbox-creation measurements.
func EchoProgram() *Program {
	src := `
        li   r1, 0
        li   r2, 0
        li   r3, 0
        host 4
        li   r1, 0
        li   r2, 0
        mov  r3, r0
        li   r4, 0
        host 5
        halt
`
	p, err := Assemble(src)
	if err != nil {
		panic("dvm: internal echo program failed to assemble: " + err.Error())
	}
	return p
}

// SyscallProgram returns a program that immediately attempts a system
// call; used by isolation tests to verify trapping.
func SyscallProgram() *Program {
	p, err := Assemble("syscall 60\n")
	if err != nil {
		panic("dvm: internal syscall program failed to assemble: " + err.Error())
	}
	return p
}

// SpinProgram returns a program that loops forever; used to verify gas
// exhaustion (timeout preemption).
func SpinProgram() *Program {
	p, err := Assemble("loop: jmp loop\n")
	if err != nil {
		panic("dvm: internal spin program failed to assemble: " + err.Error())
	}
	return p
}
