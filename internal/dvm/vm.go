package dvm

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dandelion/internal/memctx"
)

// Trap errors: ways an untrusted program can be aborted. Each maps to a
// failure the platform reports to the user (cf. the process backend
// terminating functions that attempt syscalls, §6.2).
var (
	ErrSyscallAttempt = errors.New("dvm: function attempted a system call")
	ErrGasExhausted   = errors.New("dvm: gas exhausted (timeout preemption)")
	ErrMemFault       = errors.New("dvm: memory access out of bounds")
	ErrDivByZero      = errors.New("dvm: division by zero")
	ErrBadHostCall    = errors.New("dvm: invalid host interface call")
	ErrStackOverflow  = errors.New("dvm: call stack overflow")
	ErrStackUnderflow = errors.New("dvm: return with empty call stack")
)

// Host interface call numbers. Arguments are passed in r1..r6, results in
// r0. This is the "special data structure" lower-level system interface
// of §4.1, expressed as host calls instead of memory-mapped descriptors.
const (
	HostInputSetCount = 1 // r0 <- number of input sets
	HostItemCount     = 2 // r1=set -> r0 <- number of items
	HostItemSize      = 3 // r1=set r2=item -> r0 <- payload size
	HostReadItem      = 4 // r1=set r2=item r3=dst -> r0 <- bytes copied
	HostWriteItem     = 5 // r1=outSet# r2=src r3=len r4=key# -> r0 <- 0
	HostSetName       = 6 // r1=set r2=dst -> r0 <- name length (copied to dst)
	HostItemName      = 7 // r1=set r2=item r3=dst -> r0 <- name length
)

// Limits guarding the interpreter against hostile programs.
const (
	callStackLimit = 1024
	// DefaultGas bounds instruction count when the caller does not
	// specify one; roughly "a few hundred ms of compute".
	DefaultGas = 64 << 20
)

// Result reports a finished execution.
type Result struct {
	// Outputs harvested from the function's output writes, one set per
	// distinct output-set index, named "out0", "out1", ... unless the
	// caller renames them.
	Outputs []memctx.Set
	// GasUsed counts executed instructions.
	GasUsed int64
	// Halted is true when the program executed OpHalt (vs. falling off
	// the end of the code segment, which is also a clean stop).
	Halted bool
}

// Run interprets the program against the given memory size and inputs.
// memBytes bounds the byte-addressable function memory; the program's
// read-only data segment is mapped at address 0 of this memory.
func Run(p *Program, memBytes int, inputs []memctx.Set, gasLimit int64) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if gasLimit <= 0 {
		gasLimit = DefaultGas
	}
	if memBytes < len(p.Data) {
		return nil, fmt.Errorf("%w: data segment (%d bytes) exceeds memory (%d)", ErrMemFault, len(p.Data), memBytes)
	}
	mem := make([]byte, memBytes)
	copy(mem, p.Data)

	var regs [NumRegs]int64
	var stack []int64
	outputs := map[int64]*memctx.Set{}

	pc := int64(0)
	gas := int64(0)
	n := int64(len(p.Code))

	checkMem := func(addr, size int64) error {
		if addr < 0 || size < 0 || addr+size > int64(len(mem)) {
			return fmt.Errorf("%w: [%d,%d) of %d", ErrMemFault, addr, addr+size, len(mem))
		}
		return nil
	}

	for pc < n {
		gas++
		if gas > gasLimit {
			return nil, ErrGasExhausted
		}
		ins := p.Code[pc]
		next := pc + 1
		switch ins.Op {
		case OpHalt:
			return finish(outputs, gas, true), nil
		case OpLi:
			regs[ins.Rd] = ins.Imm
		case OpMov:
			regs[ins.Rd] = regs[ins.Rs]
		case OpAdd:
			regs[ins.Rd] = regs[ins.Rs] + regs[ins.Rt]
		case OpSub:
			regs[ins.Rd] = regs[ins.Rs] - regs[ins.Rt]
		case OpMul:
			regs[ins.Rd] = regs[ins.Rs] * regs[ins.Rt]
		case OpDiv:
			if regs[ins.Rt] == 0 {
				return nil, ErrDivByZero
			}
			regs[ins.Rd] = regs[ins.Rs] / regs[ins.Rt]
		case OpMod:
			if regs[ins.Rt] == 0 {
				return nil, ErrDivByZero
			}
			regs[ins.Rd] = regs[ins.Rs] % regs[ins.Rt]
		case OpAnd:
			regs[ins.Rd] = regs[ins.Rs] & regs[ins.Rt]
		case OpOr:
			regs[ins.Rd] = regs[ins.Rs] | regs[ins.Rt]
		case OpXor:
			regs[ins.Rd] = regs[ins.Rs] ^ regs[ins.Rt]
		case OpShl:
			regs[ins.Rd] = regs[ins.Rs] << (uint64(regs[ins.Rt]) & 63)
		case OpShr:
			regs[ins.Rd] = int64(uint64(regs[ins.Rs]) >> (uint64(regs[ins.Rt]) & 63))
		case OpAddi:
			regs[ins.Rd] = regs[ins.Rs] + ins.Imm
		case OpMuli:
			regs[ins.Rd] = regs[ins.Rs] * ins.Imm
		case OpLd:
			addr := regs[ins.Rs] + ins.Imm
			if err := checkMem(addr, 8); err != nil {
				return nil, err
			}
			regs[ins.Rd] = int64(binary.LittleEndian.Uint64(mem[addr:]))
		case OpSt:
			addr := regs[ins.Rd] + ins.Imm
			if err := checkMem(addr, 8); err != nil {
				return nil, err
			}
			binary.LittleEndian.PutUint64(mem[addr:], uint64(regs[ins.Rs]))
		case OpLdb:
			addr := regs[ins.Rs] + ins.Imm
			if err := checkMem(addr, 1); err != nil {
				return nil, err
			}
			regs[ins.Rd] = int64(mem[addr])
		case OpStb:
			addr := regs[ins.Rd] + ins.Imm
			if err := checkMem(addr, 1); err != nil {
				return nil, err
			}
			mem[addr] = byte(regs[ins.Rs])
		case OpJmp:
			next = ins.Imm
		case OpBeq:
			if regs[ins.Rs] == regs[ins.Rt] {
				next = ins.Imm
			}
		case OpBne:
			if regs[ins.Rs] != regs[ins.Rt] {
				next = ins.Imm
			}
		case OpBlt:
			if regs[ins.Rs] < regs[ins.Rt] {
				next = ins.Imm
			}
		case OpBge:
			if regs[ins.Rs] >= regs[ins.Rt] {
				next = ins.Imm
			}
		case OpCall:
			if len(stack) >= callStackLimit {
				return nil, ErrStackOverflow
			}
			stack = append(stack, pc+1)
			next = ins.Imm
		case OpRet:
			if len(stack) == 0 {
				return nil, ErrStackUnderflow
			}
			next = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		case OpSyscall:
			// The entire point: user code cannot reach the host kernel.
			return nil, fmt.Errorf("%w (number %d)", ErrSyscallAttempt, ins.Imm)
		case OpHost:
			if err := hostCall(ins.Imm, &regs, mem, inputs, outputs, checkMem); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("dvm: unknown opcode %d at pc %d", ins.Op, pc)
		}
		pc = next
	}
	return finish(outputs, gas, false), nil
}

func hostCall(num int64, regs *[NumRegs]int64, mem []byte, inputs []memctx.Set,
	outputs map[int64]*memctx.Set, checkMem func(addr, size int64) error) error {
	getSet := func(idx int64) (*memctx.Set, error) {
		if idx < 0 || idx >= int64(len(inputs)) {
			return nil, fmt.Errorf("%w: set index %d of %d", ErrBadHostCall, idx, len(inputs))
		}
		return &inputs[idx], nil
	}
	getItem := func(setIdx, itemIdx int64) (*memctx.Item, error) {
		s, err := getSet(setIdx)
		if err != nil {
			return nil, err
		}
		if itemIdx < 0 || itemIdx >= int64(len(s.Items)) {
			return nil, fmt.Errorf("%w: item index %d of %d", ErrBadHostCall, itemIdx, len(s.Items))
		}
		return &s.Items[itemIdx], nil
	}
	copyOut := func(dst int64, b []byte) error {
		if err := checkMem(dst, int64(len(b))); err != nil {
			return err
		}
		copy(mem[dst:], b)
		return nil
	}

	switch num {
	case HostInputSetCount:
		regs[0] = int64(len(inputs))
	case HostItemCount:
		s, err := getSet(regs[1])
		if err != nil {
			return err
		}
		regs[0] = int64(len(s.Items))
	case HostItemSize:
		it, err := getItem(regs[1], regs[2])
		if err != nil {
			return err
		}
		regs[0] = int64(len(it.Data))
	case HostReadItem:
		it, err := getItem(regs[1], regs[2])
		if err != nil {
			return err
		}
		if err := copyOut(regs[3], it.Data); err != nil {
			return err
		}
		regs[0] = int64(len(it.Data))
	case HostWriteItem:
		setIdx, src, length := regs[1], regs[2], regs[3]
		if setIdx < 0 || setIdx > 255 {
			return fmt.Errorf("%w: output set index %d", ErrBadHostCall, setIdx)
		}
		if err := checkMem(src, length); err != nil {
			return err
		}
		out := outputs[setIdx]
		if out == nil {
			out = &memctx.Set{Name: fmt.Sprintf("out%d", setIdx)}
			outputs[setIdx] = out
		}
		data := make([]byte, length)
		copy(data, mem[src:src+length])
		out.Items = append(out.Items, memctx.Item{
			Name: fmt.Sprintf("item%d", len(out.Items)),
			Key:  fmt.Sprintf("%d", regs[4]),
			Data: data,
		})
		regs[0] = 0
	case HostSetName:
		s, err := getSet(regs[1])
		if err != nil {
			return err
		}
		if err := copyOut(regs[2], []byte(s.Name)); err != nil {
			return err
		}
		regs[0] = int64(len(s.Name))
	case HostItemName:
		it, err := getItem(regs[1], regs[2])
		if err != nil {
			return err
		}
		if err := copyOut(regs[3], []byte(it.Name)); err != nil {
			return err
		}
		regs[0] = int64(len(it.Name))
	default:
		return fmt.Errorf("%w: number %d", ErrBadHostCall, num)
	}
	return nil
}

func finish(outputs map[int64]*memctx.Set, gas int64, halted bool) *Result {
	res := &Result{GasUsed: gas, Halted: halted}
	for i := int64(0); i <= 255; i++ {
		if s, ok := outputs[i]; ok {
			res.Outputs = append(res.Outputs, *s)
		}
	}
	return res
}
