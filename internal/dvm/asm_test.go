package dvm

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestAssembleBasics(t *testing.T) {
	p := mustAssemble(t, `
	; comment line
	start:  li r1, 0x10   // hex immediate
	        addi r1, r1, -1
	        bne r1, r2, start
	        halt
	`)
	if len(p.Code) != 4 {
		t.Fatalf("code len = %d, want 4", len(p.Code))
	}
	if p.Code[0].Imm != 16 {
		t.Fatalf("hex imm = %d, want 16", p.Code[0].Imm)
	}
	if p.Code[2].Imm != 0 {
		t.Fatalf("branch target = %d, want 0", p.Code[2].Imm)
	}
}

func TestAssembleForwardLabel(t *testing.T) {
	p := mustAssemble(t, `
	        jmp end
	        li r0, 1
	end:    halt
	`)
	if p.Code[0].Imm != 2 {
		t.Fatalf("forward label target = %d, want 2", p.Code[0].Imm)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2\n",
		"li r99, 1\n",
		"li r1\n",
		"jmp missing\n",
		"dup: halt\ndup: halt\n",
		"li rX, 1\n",
		"add r1, r2\n",
		".word abc\n",
		`.data unquoted`,
		"1bad: halt\n",
	}
	for _, src := range cases {
		if _, err := Assemble(src); !errors.Is(err, ErrAsm) {
			t.Errorf("Assemble(%q) err = %v, want ErrAsm", src, err)
		}
	}
}

func TestAssembleWordDirective(t *testing.T) {
	p := mustAssemble(t, ".word 0x0102030405060708\nhalt\n")
	want := []byte{8, 7, 6, 5, 4, 3, 2, 1}
	if !bytes.Equal(p.Data, want) {
		t.Fatalf("data = %v, want %v", p.Data, want)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := MatMulProgram(4)
	p.Data = []byte("segment")
	enc := p.Encode()
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Code) != len(p.Code) || !bytes.Equal(dec.Data, p.Data) {
		t.Fatal("decode mismatch")
	}
	for i := range p.Code {
		if dec.Code[i] != p.Code[i] {
			t.Fatalf("instr %d mismatch: %+v vs %+v", i, dec.Code[i], p.Code[i])
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("XXXX\x00\x00\x00\x00"),
		append([]byte("DVM1"), 0xff, 0xff, 0xff, 0x7f), // huge code len
	}
	for _, b := range cases {
		if _, err := Decode(b); !errors.Is(err, ErrBadBinary) {
			t.Errorf("Decode(%q) err = %v, want ErrBadBinary", b, err)
		}
	}
	// Valid header, truncated data segment.
	p := EchoProgram()
	enc := p.Encode()
	if _, err := Decode(enc[:len(enc)-1]); err == nil {
		t.Error("truncated binary accepted")
	}
}

func TestDecodeValidates(t *testing.T) {
	p := &Program{Code: []Instr{{Op: OpJmp, Imm: 99}}}
	if _, err := Decode(p.Encode()); err == nil {
		t.Fatal("decode accepted out-of-range branch")
	}
}

func TestDisassembleReassemble(t *testing.T) {
	orig := MatMulProgram(2)
	text := Disassemble(orig)
	back, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassemble failed: %v\n%s", err, text)
	}
	if len(back.Code) != len(orig.Code) {
		t.Fatalf("code len %d vs %d", len(back.Code), len(orig.Code))
	}
	for i := range orig.Code {
		if back.Code[i] != orig.Code[i] {
			t.Fatalf("instr %d: %+v vs %+v", i, back.Code[i], orig.Code[i])
		}
	}
}

func TestDisassembleContainsMnemonics(t *testing.T) {
	text := Disassemble(ReduceProgram())
	for _, m := range []string{"host", "blt", "halt"} {
		if !strings.Contains(text, m) {
			t.Errorf("disassembly missing %q", m)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []*Program{
		{Code: []Instr{{Op: opMax}}},
		{Code: []Instr{{Op: OpAdd, Rd: 16}}},
		{Code: []Instr{{Op: OpBeq, Imm: -1}}},
		{Code: []Instr{{Op: OpCall, Imm: 5}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid program", i)
		}
	}
}

// Property: Encode/Decode round-trips arbitrary valid instruction fields.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(rd, rs, rt uint8, imm int64, data []byte) bool {
		p := &Program{
			Code: []Instr{
				{Op: OpLi, Rd: rd % NumRegs, Imm: imm},
				{Op: OpAdd, Rd: rd % NumRegs, Rs: rs % NumRegs, Rt: rt % NumRegs},
				{Op: OpHalt},
			},
			Data: data,
		}
		dec, err := Decode(p.Encode())
		if err != nil {
			return false
		}
		return dec.Code[0].Imm == imm && bytes.Equal(dec.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOpString(t *testing.T) {
	if OpAdd.String() != "add" || OpSyscall.String() != "syscall" {
		t.Fatal("op names wrong")
	}
	if s := Op(200).String(); !strings.Contains(s, "200") {
		t.Fatalf("unknown op string = %q", s)
	}
}
