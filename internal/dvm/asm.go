package dvm

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrAsm reports an assembly error; details are wrapped around it.
var ErrAsm = errors.New("dvm: assembly error")

// Assemble translates dvm assembly text into a Program.
//
// Syntax, one instruction per line:
//
//	; comment (also //)
//	label:
//	li   r1, 42
//	add  r0, r1, r2
//	ld   r3, r1, 8       ; rd, base, offset
//	st   r1, r3, 0       ; base, src, offset
//	beq  r1, r2, loop
//	jmp  done
//	host 4
//	.data "raw bytes"    ; appended to the data segment
//	.word 123            ; 8-byte little-endian word in the data segment
func Assemble(src string) (*Program, error) {
	type pending struct {
		instr int    // index into code
		label string // unresolved target
		line  int
	}
	p := &Program{}
	labels := map[string]int64{}
	var fixups []pending

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels: may share a line with an instruction ("loop: add ...").
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			name := strings.TrimSpace(line[:i])
			if !isIdent(name) {
				return nil, fmt.Errorf("%w: line %d: bad label %q", ErrAsm, ln+1, name)
			}
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("%w: line %d: duplicate label %q", ErrAsm, ln+1, name)
			}
			labels[name] = int64(len(p.Code))
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}

		fields := strings.Fields(line)
		mnem := strings.ToLower(fields[0])
		rest := strings.TrimSpace(line[len(fields[0]):])
		args := splitArgs(rest)

		switch mnem {
		case ".data":
			s, err := strconv.Unquote(rest)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: .data wants a quoted string: %v", ErrAsm, ln+1, err)
			}
			p.Data = append(p.Data, s...)
			continue
		case ".word":
			v, err := strconv.ParseInt(rest, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: .word: %v", ErrAsm, ln+1, err)
			}
			var w [8]byte
			for i := 0; i < 8; i++ {
				w[i] = byte(v >> (8 * i))
			}
			p.Data = append(p.Data, w[:]...)
			continue
		}

		op, ok := mnemonics[mnem]
		if !ok {
			return nil, fmt.Errorf("%w: line %d: unknown mnemonic %q", ErrAsm, ln+1, mnem)
		}
		ins := Instr{Op: op}
		fail := func(msg string) error {
			return fmt.Errorf("%w: line %d: %s %s: %s", ErrAsm, ln+1, mnem, rest, msg)
		}
		reg := func(s string) (uint8, error) {
			if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
				return 0, fail(fmt.Sprintf("want register, got %q", s))
			}
			v, err := strconv.Atoi(s[1:])
			if err != nil || v < 0 || v >= NumRegs {
				return 0, fail(fmt.Sprintf("bad register %q", s))
			}
			return uint8(v), nil
		}
		imm := func(s string) (int64, error) {
			v, err := strconv.ParseInt(s, 0, 64)
			if err != nil {
				return 0, fail(fmt.Sprintf("bad immediate %q", s))
			}
			return v, nil
		}
		// target resolves a label or numeric immediate, deferring
		// unknown labels to the fixup pass.
		target := func(s string) (int64, bool, error) {
			if v, err := strconv.ParseInt(s, 0, 64); err == nil {
				return v, true, nil
			}
			if !isIdent(s) {
				return 0, false, fail(fmt.Sprintf("bad target %q", s))
			}
			if v, ok := labels[s]; ok {
				return v, true, nil
			}
			fixups = append(fixups, pending{instr: len(p.Code), label: s, line: ln + 1})
			return 0, false, nil
		}
		need := func(n int) error {
			if len(args) != n {
				return fail(fmt.Sprintf("want %d operands, got %d", n, len(args)))
			}
			return nil
		}

		var err error
		switch op {
		case OpHalt, OpRet:
			err = need(0)
		case OpLi:
			if err = need(2); err == nil {
				if ins.Rd, err = reg(args[0]); err == nil {
					ins.Imm, err = imm(args[1])
				}
			}
		case OpMov:
			if err = need(2); err == nil {
				if ins.Rd, err = reg(args[0]); err == nil {
					ins.Rs, err = reg(args[1])
				}
			}
		case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpShl, OpShr:
			if err = need(3); err == nil {
				if ins.Rd, err = reg(args[0]); err == nil {
					if ins.Rs, err = reg(args[1]); err == nil {
						ins.Rt, err = reg(args[2])
					}
				}
			}
		case OpAddi, OpMuli:
			if err = need(3); err == nil {
				if ins.Rd, err = reg(args[0]); err == nil {
					if ins.Rs, err = reg(args[1]); err == nil {
						ins.Imm, err = imm(args[2])
					}
				}
			}
		case OpLd, OpLdb:
			if err = need(3); err == nil {
				if ins.Rd, err = reg(args[0]); err == nil {
					if ins.Rs, err = reg(args[1]); err == nil {
						ins.Imm, err = imm(args[2])
					}
				}
			}
		case OpSt, OpStb:
			if err = need(3); err == nil {
				if ins.Rd, err = reg(args[0]); err == nil {
					if ins.Rs, err = reg(args[1]); err == nil {
						ins.Imm, err = imm(args[2])
					}
				}
			}
		case OpJmp, OpCall:
			if err = need(1); err == nil {
				var v int64
				v, _, err = target(args[0])
				ins.Imm = v
			}
		case OpBeq, OpBne, OpBlt, OpBge:
			if err = need(3); err == nil {
				if ins.Rs, err = reg(args[0]); err == nil {
					if ins.Rt, err = reg(args[1]); err == nil {
						var v int64
						v, _, err = target(args[2])
						ins.Imm = v
					}
				}
			}
		case OpHost, OpSyscall:
			if err = need(1); err == nil {
				ins.Imm, err = imm(args[0])
			}
		}
		if err != nil {
			return nil, err
		}
		p.Code = append(p.Code, ins)
	}

	for _, f := range fixups {
		v, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("%w: line %d: undefined label %q", ErrAsm, f.line, f.label)
		}
		p.Code[f.instr].Imm = v
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

var mnemonics = map[string]Op{
	"halt": OpHalt, "li": OpLi, "mov": OpMov, "add": OpAdd, "sub": OpSub,
	"mul": OpMul, "div": OpDiv, "mod": OpMod, "and": OpAnd, "or": OpOr,
	"xor": OpXor, "shl": OpShl, "shr": OpShr, "addi": OpAddi, "muli": OpMuli,
	"ld": OpLd, "st": OpSt, "ldb": OpLdb, "stb": OpStb, "jmp": OpJmp,
	"beq": OpBeq, "bne": OpBne, "blt": OpBlt, "bge": OpBge,
	"call": OpCall, "ret": OpRet, "host": OpHost, "syscall": OpSyscall,
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Disassemble renders a program back to assembler text. Branch targets
// are emitted as numeric instruction indices with generated labels.
func Disassemble(p *Program) string {
	targets := map[int64]string{}
	for _, ins := range p.Code {
		switch ins.Op {
		case OpJmp, OpBeq, OpBne, OpBlt, OpBge, OpCall:
			if _, ok := targets[ins.Imm]; !ok {
				targets[ins.Imm] = fmt.Sprintf("L%d", ins.Imm)
			}
		}
	}
	var b strings.Builder
	for i, ins := range p.Code {
		if lbl, ok := targets[int64(i)]; ok {
			fmt.Fprintf(&b, "%s:\n", lbl)
		}
		b.WriteString("\t")
		switch ins.Op {
		case OpHalt, OpRet:
			b.WriteString(ins.Op.String())
		case OpLi:
			fmt.Fprintf(&b, "%s r%d, %d", ins.Op, ins.Rd, ins.Imm)
		case OpMov:
			fmt.Fprintf(&b, "%s r%d, r%d", ins.Op, ins.Rd, ins.Rs)
		case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpShl, OpShr:
			fmt.Fprintf(&b, "%s r%d, r%d, r%d", ins.Op, ins.Rd, ins.Rs, ins.Rt)
		case OpAddi, OpMuli, OpLd, OpLdb, OpSt, OpStb:
			fmt.Fprintf(&b, "%s r%d, r%d, %d", ins.Op, ins.Rd, ins.Rs, ins.Imm)
		case OpJmp, OpCall:
			fmt.Fprintf(&b, "%s %s", ins.Op, targets[ins.Imm])
		case OpBeq, OpBne, OpBlt, OpBge:
			fmt.Fprintf(&b, "%s r%d, r%d, %s", ins.Op, ins.Rs, ins.Rt, targets[ins.Imm])
		case OpHost, OpSyscall:
			fmt.Fprintf(&b, "%s %d", ins.Op, ins.Imm)
		default:
			fmt.Fprintf(&b, "%s", ins.Op)
		}
		b.WriteString("\n")
	}
	return b.String()
}
