package ssb

import (
	"strings"
	"testing"
	"testing/quick"
)

func testDB(t *testing.T) *DB {
	t.Helper()
	return Generate(20000, 42)
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(1000, 7)
	b := Generate(1000, 7)
	if a.Facts.Len() != 1000 || b.Facts.Len() != 1000 {
		t.Fatal("row count")
	}
	for i := 0; i < 1000; i++ {
		if a.Facts.Revenue[i] != b.Facts.Revenue[i] {
			t.Fatal("non-deterministic generation")
		}
	}
}

func TestGenerateReferentialIntegrity(t *testing.T) {
	db := testDB(t)
	dates := map[int32]bool{}
	for _, d := range db.Dates {
		dates[d.DateKey] = true
	}
	for i := 0; i < db.Facts.Len(); i++ {
		if !dates[db.Facts.OrderDate[i]] {
			t.Fatalf("dangling date key %d", db.Facts.OrderDate[i])
		}
		if k := db.Facts.CustKey[i]; k < 1 || int(k) > len(db.Customers) {
			t.Fatalf("dangling customer key %d", k)
		}
		if k := db.Facts.PartKey[i]; k < 1 || int(k) > len(db.Parts) {
			t.Fatalf("dangling part key %d", k)
		}
		if k := db.Facts.SuppKey[i]; k < 1 || int(k) > len(db.Suppliers) {
			t.Fatalf("dangling supplier key %d", k)
		}
	}
}

func TestFilterAndJoin(t *testing.T) {
	db := testDB(t)
	f := db.Facts
	sel := ScanAll(f)
	if len(sel) != f.Len() {
		t.Fatal("scan all size")
	}
	filtered := Filter(f, sel, func(i int32) bool { return f.Quantity[i] < 10 })
	for _, i := range filtered {
		if f.Quantity[i] >= 10 {
			t.Fatal("filter kept bad row")
		}
	}
	j := BuildJoin(len(db.Dates), func(i int) int32 { return db.Dates[i].DateKey },
		func(i int) bool { return db.Dates[i].Year == 1994 })
	joined := j.Probe(ScanAll(f), f.OrderDate)
	for _, i := range joined {
		if f.OrderDate[i]/10000 != 1994 {
			t.Fatalf("join passed wrong year: %d", f.OrderDate[i])
		}
	}
	if len(joined) == 0 {
		t.Fatal("join empty; generator should cover 1994")
	}
}

func TestGroupSumMergeEquivalence(t *testing.T) {
	// Partial-per-chunk + merge must equal single-chunk execution for
	// every query: the invariant that makes parallel Dandelion
	// execution correct.
	db := testDB(t)
	for _, q := range Queries() {
		single, err := RunQuery(db, q, 1)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := RunQuery(db, q, 16)
		if err != nil {
			t.Fatal(err)
		}
		a, b := single.Rows(), parallel.Rows()
		if len(a) != len(b) {
			t.Fatalf("%s: group counts %d vs %d", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: group %d: %+v vs %+v", q, i, a[i], b[i])
			}
		}
		if len(a) == 0 {
			t.Fatalf("%s: produced no groups", q)
		}
	}
}

func TestQ11MatchesNaive(t *testing.T) {
	db := testDB(t)
	got, err := RunQuery(db, Q11, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Naive reference.
	years := map[int32]int32{}
	for _, d := range db.Dates {
		years[d.DateKey] = d.Year
	}
	var want int64
	f := db.Facts
	for i := 0; i < f.Len(); i++ {
		if years[f.OrderDate[i]] == 1993 && f.Discount[i] >= 1 && f.Discount[i] <= 3 && f.Quantity[i] < 25 {
			want += int64(f.ExtendedPrice[i]) * int64(f.Discount[i])
		}
	}
	rows := got.Rows()
	if len(rows) != 1 || rows[0].Sum != want {
		t.Fatalf("Q1.1 = %+v, want sum %d", rows, want)
	}
}

func TestQ21GroupKeysShape(t *testing.T) {
	db := testDB(t)
	g, _ := RunQuery(db, Q21, 4)
	for _, row := range g.Rows() {
		parts := strings.Split(row.Key, "|")
		if len(parts) != 2 || !strings.HasPrefix(parts[1], "MFGR#12") {
			t.Fatalf("Q2.1 key %q", row.Key)
		}
	}
}

func TestQ31OnlyAsia(t *testing.T) {
	db := testDB(t)
	g, _ := RunQuery(db, Q31, 4)
	asia := map[string]bool{}
	for _, n := range nations["ASIA"] {
		asia[n] = true
	}
	for _, row := range g.Rows() {
		parts := strings.Split(row.Key, "|")
		if len(parts) != 3 || !asia[parts[0]] || !asia[parts[1]] {
			t.Fatalf("Q3.1 key %q not ASIA/ASIA", row.Key)
		}
	}
}

func TestQ41ProfitCanBeComputed(t *testing.T) {
	db := testDB(t)
	g, _ := RunQuery(db, Q41, 4)
	if len(g.Rows()) == 0 {
		t.Fatal("Q4.1 empty")
	}
}

func TestUnknownQuery(t *testing.T) {
	db := Generate(100, 1)
	if _, err := RunQuery(db, QueryID("Q9.9"), 1); err == nil {
		t.Fatal("unknown query accepted")
	}
}

func TestEncodeDecodePartials(t *testing.T) {
	g := NewGroupSum()
	g.Add("1993|MFGR#121", 500)
	g.Add("1994|MFGR#122", 700)
	g.Add("1993|MFGR#121", 250)
	back, err := DecodeGroupSum(g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	a, b := g.Rows(), back.Rows()
	if len(a) != len(b) {
		t.Fatal("row count mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if _, err := DecodeGroupSum([]byte("bad\tline")); err == nil {
		t.Fatal("malformed partial accepted")
	}
	if _, err := DecodeGroupSum([]byte("k\tx\t1")); err == nil {
		t.Fatal("non-numeric sum accepted")
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(sums []int64) bool {
		g := NewGroupSum()
		for i, s := range sums {
			g.Add(string(rune('a'+i%20)), s)
		}
		back, err := DecodeGroupSum(g.Encode())
		if err != nil {
			return false
		}
		a, b := g.Rows(), back.Rows()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAthenaModel(t *testing.T) {
	m := DefaultAthena()
	// 700 MB at $5/TB = 0.35¢, matching Figure 9's ~0.32-0.33¢ bars.
	c := m.CostCents(700 << 20)
	if c < 0.3 || c < 0.2 || c > 0.45 {
		t.Fatalf("Athena cost for 700MB = %.3f¢, want ~0.35", c)
	}
	// Billing floor.
	if m.CostCents(1) != m.CostCents(10<<20) {
		t.Fatal("10MB minimum not applied")
	}
	// Latency: startup dominates small scans.
	if m.LatencyMS(1<<20) < m.StartupMS {
		t.Fatal("latency below startup")
	}
	lat := m.LatencyMS(700 << 20)
	if lat < 2000 || lat > 6000 {
		t.Fatalf("Athena 700MB latency = %.0f ms, want 2-6 s (Figure 9 range)", lat)
	}
}

func TestEC2Model(t *testing.T) {
	m := DefaultEC2()
	// §7.7: Dandelion ~2s query on m7a.8xlarge ≈ 0.08-0.12¢.
	c := m.CostCents(2000)
	if c < 0.05 || c > 0.2 {
		t.Fatalf("EC2 cost for 2s = %.3f¢", c)
	}
}

func TestFig9Shape(t *testing.T) {
	// Dandelion must be both faster (≈40%) and cheaper (≈67%) than
	// Athena for short queries on 700 MB.
	athena := DefaultAthena()
	ec2 := DefaultEC2()
	scan := int64(700 << 20)
	athenaLat := athena.LatencyMS(scan)
	dandelionLat := athenaLat * 0.6 // paper's measured 40% improvement
	if ec2.CostCents(dandelionLat) > athena.CostCents(scan)*0.5 {
		t.Fatalf("Dandelion cost %.3f¢ not well below Athena %.3f¢",
			ec2.CostCents(dandelionLat), athena.CostCents(scan))
	}
}

func TestSliceView(t *testing.T) {
	db := Generate(100, 3)
	s := db.Facts.Slice(10, 20)
	if s.Len() != 10 || s.OrderKey[0] != db.Facts.OrderKey[10] {
		t.Fatal("slice view wrong")
	}
}
