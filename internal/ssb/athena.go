package ssb

// Athena cost/latency model for Figure 9. AWS Athena bills per byte
// scanned ($5/TB with a 10 MB minimum per query) and runs on shared
// warehouse infrastructure with a per-query startup overhead; Dandelion
// runs on a rented EC2 VM billed per second.

// AthenaModel captures the Query-as-a-Service pricing and performance
// assumptions. Defaults follow public AWS pricing and the latency range
// in Figure 9.
type AthenaModel struct {
	// USDPerTB is the bytes-scanned price ($5/TB).
	USDPerTB float64
	// MinScanBytes is the billing floor (10 MB).
	MinScanBytes int64
	// StartupMS is fixed per-query overhead (planning, scheduling on
	// the shared warehouse), queueing excluded as in the paper.
	StartupMS float64
	// ScanMBPerSec is effective scan throughput.
	ScanMBPerSec float64
}

// DefaultAthena returns the published-pricing model.
func DefaultAthena() AthenaModel {
	return AthenaModel{
		USDPerTB:     5.0,
		MinScanBytes: 10 << 20,
		StartupMS:    1600,
		ScanMBPerSec: 350,
	}
}

// CostCents reports the query cost in US cents for the scanned bytes.
func (m AthenaModel) CostCents(scanBytes int64) float64 {
	if scanBytes < m.MinScanBytes {
		scanBytes = m.MinScanBytes
	}
	return float64(scanBytes) / 1e12 * m.USDPerTB * 100
}

// LatencyMS reports modeled execution latency for the scanned bytes.
func (m AthenaModel) LatencyMS(scanBytes int64) float64 {
	return m.StartupMS + float64(scanBytes)/(m.ScanMBPerSec*1e6)*1000
}

// EC2Model prices Dandelion's execution: a VM billed per second.
type EC2Model struct {
	// USDPerHour for the instance (m7a.8xlarge ≈ $1.85/h on-demand).
	USDPerHour float64
}

// DefaultEC2 returns the m7a.8xlarge pricing used in §7.7.
func DefaultEC2() EC2Model { return EC2Model{USDPerHour: 1.85} }

// CostCents reports the cost of occupying the VM for latencyMS.
func (m EC2Model) CostCents(latencyMS float64) float64 {
	return latencyMS / 1000 / 3600 * m.USDPerHour * 100
}
