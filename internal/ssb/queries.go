package ssb

import "fmt"

// The four SSB queries of Figure 9. Each query is expressed as a
// partial-aggregation function over a fact-table chunk plus the shared
// merge step, so the same code runs single-node (RunQuery) and as
// parallel Dandelion compute-function instances (QueryPartial chunks →
// GroupSum.Merge).

// QueryID names one of the evaluated queries.
type QueryID string

// The evaluated queries.
const (
	Q11 QueryID = "Q1.1"
	Q21 QueryID = "Q2.1"
	Q31 QueryID = "Q3.1"
	Q41 QueryID = "Q4.1"
)

// Queries lists the evaluated query IDs in figure order.
func Queries() []QueryID { return []QueryID{Q11, Q21, Q31, Q41} }

// Plan holds the join structures built once per query over the
// dimension tables; fact chunks are then processed independently.
type Plan struct {
	ID QueryID
	db *DB

	dateJoin *DimJoin
	partJoin *DimJoin
	suppJoin *DimJoin
	custJoin *DimJoin
}

// NewPlan builds the dimension hash tables for the query.
func NewPlan(db *DB, id QueryID) (*Plan, error) {
	p := &Plan{ID: id, db: db}
	dateKey := func(i int) int32 { return db.Dates[i].DateKey }
	partKey := func(i int) int32 { return db.Parts[i].PartKey }
	suppKey := func(i int) int32 { return db.Suppliers[i].SuppKey }
	custKey := func(i int) int32 { return db.Customers[i].CustKey }
	switch id {
	case Q11:
		p.dateJoin = BuildJoin(len(db.Dates), dateKey, func(i int) bool {
			return db.Dates[i].Year == 1993
		})
	case Q21:
		p.dateJoin = BuildJoin(len(db.Dates), dateKey, nil)
		p.partJoin = BuildJoin(len(db.Parts), partKey, func(i int) bool {
			return db.Parts[i].Category == "MFGR#12"
		})
		p.suppJoin = BuildJoin(len(db.Suppliers), suppKey, func(i int) bool {
			return db.Suppliers[i].Region == "AMERICA"
		})
	case Q31:
		p.dateJoin = BuildJoin(len(db.Dates), dateKey, func(i int) bool {
			y := db.Dates[i].Year
			return y >= 1992 && y <= 1997
		})
		p.suppJoin = BuildJoin(len(db.Suppliers), suppKey, func(i int) bool {
			return db.Suppliers[i].Region == "ASIA"
		})
		p.custJoin = BuildJoin(len(db.Customers), custKey, func(i int) bool {
			return db.Customers[i].Region == "ASIA"
		})
	case Q41:
		p.dateJoin = BuildJoin(len(db.Dates), dateKey, nil)
		p.partJoin = BuildJoin(len(db.Parts), partKey, func(i int) bool {
			m := db.Parts[i].MFGR
			return m == "MFGR#1" || m == "MFGR#2"
		})
		p.suppJoin = BuildJoin(len(db.Suppliers), suppKey, func(i int) bool {
			return db.Suppliers[i].Region == "AMERICA"
		})
		p.custJoin = BuildJoin(len(db.Customers), custKey, func(i int) bool {
			return db.Customers[i].Region == "AMERICA"
		})
	default:
		return nil, fmt.Errorf("ssb: unknown query %q", id)
	}
	return p, nil
}

// Partial processes one fact chunk, returning its partial aggregation.
func (p *Plan) Partial(chunk *LineOrders) *GroupSum {
	sel := ScanAll(chunk)
	db := p.db
	g := NewGroupSum()
	switch p.ID {
	case Q11:
		sel = Filter(chunk, sel, func(i int32) bool {
			d := chunk.Discount[i]
			return d >= 1 && d <= 3 && chunk.Quantity[i] < 25
		})
		sel = p.dateJoin.Probe(sel, chunk.OrderDate)
		for _, i := range sel {
			g.Add("revenue", int64(chunk.ExtendedPrice[i])*int64(chunk.Discount[i]))
		}
	case Q21:
		sel = p.partJoin.Probe(sel, chunk.PartKey)
		sel = p.suppJoin.Probe(sel, chunk.SuppKey)
		for _, i := range sel {
			di, ok := p.dateJoin.Lookup(chunk.OrderDate[i])
			if !ok {
				continue
			}
			pi, _ := p.partJoin.Lookup(chunk.PartKey[i])
			key := fmt.Sprintf("%d|%s", db.Dates[di].Year, db.Parts[pi].Brand)
			g.Add(key, int64(chunk.Revenue[i]))
		}
	case Q31:
		sel = p.custJoin.Probe(sel, chunk.CustKey)
		sel = p.suppJoin.Probe(sel, chunk.SuppKey)
		sel = p.dateJoin.Probe(sel, chunk.OrderDate)
		for _, i := range sel {
			ci, _ := p.custJoin.Lookup(chunk.CustKey[i])
			si, _ := p.suppJoin.Lookup(chunk.SuppKey[i])
			di, _ := p.dateJoin.Lookup(chunk.OrderDate[i])
			key := fmt.Sprintf("%s|%s|%d", db.Customers[ci].Nation,
				db.Suppliers[si].Nation, db.Dates[di].Year)
			g.Add(key, int64(chunk.Revenue[i]))
		}
	case Q41:
		sel = p.custJoin.Probe(sel, chunk.CustKey)
		sel = p.suppJoin.Probe(sel, chunk.SuppKey)
		sel = p.partJoin.Probe(sel, chunk.PartKey)
		for _, i := range sel {
			di, ok := p.dateJoin.Lookup(chunk.OrderDate[i])
			if !ok {
				continue
			}
			ci, _ := p.custJoin.Lookup(chunk.CustKey[i])
			key := fmt.Sprintf("%d|%s", db.Dates[di].Year, db.Customers[ci].Nation)
			g.Add(key, int64(chunk.Revenue[i])-int64(chunk.SupplyCost[i]))
		}
	}
	return g
}

// RunQuery executes the query over the whole fact table in nChunks
// chunks (sequentially; callers parallelize by running Partial per
// chunk themselves) and merges the partials.
func RunQuery(db *DB, id QueryID, nChunks int) (*GroupSum, error) {
	plan, err := NewPlan(db, id)
	if err != nil {
		return nil, err
	}
	if nChunks <= 0 {
		nChunks = 1
	}
	total := db.Facts.Len()
	out := NewGroupSum()
	for c := 0; c < nChunks; c++ {
		lo := c * total / nChunks
		hi := (c + 1) * total / nChunks
		if lo >= hi {
			continue
		}
		out.Merge(plan.Partial(db.Facts.Slice(lo, hi)))
	}
	return out, nil
}
