// Package ssb implements the Star Schema Benchmark (O'Neil et al.) used
// by the elastic query processing experiment in §7.7: a deterministic
// data generator, a small columnar query engine with the operators the
// paper ports from Apache Arrow Acero (filter, projection, hash join,
// group-by aggregation, order by), the four SSB queries evaluated in
// Figure 9, and a cost/latency model of AWS Athena for comparison.
package ssb

import (
	"fmt"
	"math/rand"
)

// Regions, nations, and part metadata follow the SSB specification's
// vocabulary (trimmed lists; cardinalities preserved in spirit).
var (
	regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nations = map[string][]string{
		"AFRICA":      {"ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"},
		"AMERICA":     {"ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"},
		"ASIA":        {"CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM"},
		"EUROPE":      {"FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"},
		"MIDDLE EAST": {"EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"},
	}
	mfgrs = []string{"MFGR#1", "MFGR#2", "MFGR#3", "MFGR#4", "MFGR#5"}
)

// Date is one row of the date dimension.
type Date struct {
	DateKey int32
	Year    int32
	Month   int32 // yearmonthnum, e.g. 199401
}

// Part is one row of the part dimension.
type Part struct {
	PartKey  int32
	MFGR     string
	Category string
	Brand    string
}

// Supplier is one row of the supplier dimension.
type Supplier struct {
	SuppKey int32
	Region  string
	Nation  string
	City    string
}

// Customer is one row of the customer dimension.
type Customer struct {
	CustKey int32
	Region  string
	Nation  string
	City    string
}

// LineOrders is the fact table in columnar layout.
type LineOrders struct {
	OrderKey      []int32
	CustKey       []int32
	PartKey       []int32
	SuppKey       []int32
	OrderDate     []int32 // date key
	Quantity      []int32
	ExtendedPrice []int32
	Discount      []int32 // percent, 0..10
	Revenue       []int32
	SupplyCost    []int32
}

// Len reports the row count.
func (l *LineOrders) Len() int { return len(l.OrderKey) }

// Slice returns the row range [lo, hi) as a view (shared backing).
func (l *LineOrders) Slice(lo, hi int) *LineOrders {
	return &LineOrders{
		OrderKey: l.OrderKey[lo:hi], CustKey: l.CustKey[lo:hi],
		PartKey: l.PartKey[lo:hi], SuppKey: l.SuppKey[lo:hi],
		OrderDate: l.OrderDate[lo:hi], Quantity: l.Quantity[lo:hi],
		ExtendedPrice: l.ExtendedPrice[lo:hi], Discount: l.Discount[lo:hi],
		Revenue: l.Revenue[lo:hi], SupplyCost: l.SupplyCost[lo:hi],
	}
}

// BytesPerRow is the fact table's on-wire width (10 int32 columns),
// used to translate row counts into scanned bytes for cost models.
const BytesPerRow = 40

// DB is a generated SSB database.
type DB struct {
	Dates     []Date
	Parts     []Part
	Suppliers []Supplier
	Customers []Customer
	Facts     *LineOrders
}

// Generate builds a deterministic SSB database with the given fact-table
// row count. Dimension sizes scale with the spec's ratios.
func Generate(factRows int, seed int64) *DB {
	rng := rand.New(rand.NewSource(seed))
	db := &DB{Facts: &LineOrders{}}

	// Date dimension: 7 years of days, 1992-1998.
	for year := int32(1992); year <= 1998; year++ {
		for month := int32(1); month <= 12; month++ {
			for day := int32(1); day <= 28; day++ {
				db.Dates = append(db.Dates, Date{
					DateKey: year*10000 + month*100 + day,
					Year:    year,
					Month:   year*100 + month,
				})
			}
		}
	}

	nParts := maxInt(factRows/50, 20)
	for i := 0; i < nParts; i++ {
		m := mfgrs[rng.Intn(len(mfgrs))]
		cat := fmt.Sprintf("%s%d", m, 1+rng.Intn(5))
		db.Parts = append(db.Parts, Part{
			PartKey:  int32(i + 1),
			MFGR:     m,
			Category: cat,
			Brand:    fmt.Sprintf("%s%d", cat, 1+rng.Intn(40)),
		})
	}

	nSupp := maxInt(factRows/100, 10)
	for i := 0; i < nSupp; i++ {
		r := regions[rng.Intn(len(regions))]
		n := nations[r][rng.Intn(len(nations[r]))]
		db.Suppliers = append(db.Suppliers, Supplier{
			SuppKey: int32(i + 1), Region: r, Nation: n,
			City: fmt.Sprintf("%s%d", n[:minInt(5, len(n))], rng.Intn(10)),
		})
	}

	nCust := maxInt(factRows/30, 10)
	for i := 0; i < nCust; i++ {
		r := regions[rng.Intn(len(regions))]
		n := nations[r][rng.Intn(len(nations[r]))]
		db.Customers = append(db.Customers, Customer{
			CustKey: int32(i + 1), Region: r, Nation: n,
			City: fmt.Sprintf("%s%d", n[:minInt(5, len(n))], rng.Intn(10)),
		})
	}

	f := db.Facts
	for i := 0; i < factRows; i++ {
		price := int32(100 + rng.Intn(10000))
		f.OrderKey = append(f.OrderKey, int32(i+1))
		f.CustKey = append(f.CustKey, db.Customers[rng.Intn(nCust)].CustKey)
		f.PartKey = append(f.PartKey, db.Parts[rng.Intn(nParts)].PartKey)
		f.SuppKey = append(f.SuppKey, db.Suppliers[rng.Intn(nSupp)].SuppKey)
		f.OrderDate = append(f.OrderDate, db.Dates[rng.Intn(len(db.Dates))].DateKey)
		f.Quantity = append(f.Quantity, int32(1+rng.Intn(50)))
		f.ExtendedPrice = append(f.ExtendedPrice, price)
		f.Discount = append(f.Discount, int32(rng.Intn(11)))
		f.Revenue = append(f.Revenue, price*int32(100-rng.Intn(11))/100)
		f.SupplyCost = append(f.SupplyCost, price*6/10)
	}
	return db
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
