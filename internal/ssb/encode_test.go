package ssb

import (
	"errors"
	"testing"
)

func TestChunkRoundTrip(t *testing.T) {
	db := Generate(500, 3)
	enc := EncodeChunk(db.Facts)
	if len(enc) != 8+500*BytesPerRow {
		t.Fatalf("encoded size = %d", len(enc))
	}
	dec, err := DecodeChunk(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != 500 {
		t.Fatalf("rows = %d", dec.Len())
	}
	for i := 0; i < 500; i++ {
		if dec.Revenue[i] != db.Facts.Revenue[i] || dec.OrderDate[i] != db.Facts.OrderDate[i] {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestChunkSliceRoundTrip(t *testing.T) {
	db := Generate(100, 4)
	s := db.Facts.Slice(10, 30)
	dec, err := DecodeChunk(EncodeChunk(s))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != 20 || dec.OrderKey[0] != db.Facts.OrderKey[10] {
		t.Fatal("slice chunk mismatch")
	}
}

func TestDecodeChunkErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("XXXX\x01\x00\x00\x00"),
		append([]byte("SSB1"), 0xff, 0xff, 0xff, 0x7f), // huge count
	}
	for _, c := range cases {
		if _, err := DecodeChunk(c); !errors.Is(err, ErrBadChunk) {
			t.Errorf("DecodeChunk(%q) err = %v", c, err)
		}
	}
	good := EncodeChunk(Generate(10, 1).Facts)
	if _, err := DecodeChunk(good[:len(good)-4]); !errors.Is(err, ErrBadChunk) {
		t.Error("truncated chunk accepted")
	}
}

func TestPartialOnDecodedChunk(t *testing.T) {
	db := Generate(5000, 7)
	plan, _ := NewPlan(db, Q11)
	direct := plan.Partial(db.Facts)
	dec, err := DecodeChunk(EncodeChunk(db.Facts))
	if err != nil {
		t.Fatal(err)
	}
	viaWire := plan.Partial(dec)
	a, b := direct.Rows(), viaWire.Rows()
	if len(a) != len(b) {
		t.Fatal("group count mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("group %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
