package ssb

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the columnar query engine: selection vectors over the
// fact table, hash joins against dimensions, and grouped aggregation —
// the operator set the paper ports from Apache Arrow Acero (§7.7).

// Selection is a set of selected fact-table row indices.
type Selection []int32

// ScanAll selects every row of the chunk.
func ScanAll(f *LineOrders) Selection {
	sel := make(Selection, f.Len())
	for i := range sel {
		sel[i] = int32(i)
	}
	return sel
}

// Filter retains the rows where pred holds.
func Filter(f *LineOrders, sel Selection, pred func(i int32) bool) Selection {
	out := sel[:0:len(sel)]
	for _, i := range sel {
		if pred(i) {
			out = append(out, i)
		}
	}
	return out
}

// DimJoin is a hash join against a dimension keyed by int32: build maps
// dimension key → payload index, probe passes fact rows whose key is
// present.
type DimJoin struct {
	table map[int32]int32
}

// BuildJoin builds the hash side from n dimension rows with the given
// key accessor; keep selects which rows participate (nil keeps all).
func BuildJoin(n int, key func(i int) int32, keep func(i int) bool) *DimJoin {
	j := &DimJoin{table: make(map[int32]int32, n)}
	for i := 0; i < n; i++ {
		if keep == nil || keep(i) {
			j.table[key(i)] = int32(i)
		}
	}
	return j
}

// Probe filters the selection to rows whose foreign key matches the
// build side.
func (j *DimJoin) Probe(sel Selection, fk []int32) Selection {
	out := sel[:0:len(sel)]
	for _, i := range sel {
		if _, ok := j.table[fk[i]]; ok {
			out = append(out, i)
		}
	}
	return out
}

// Lookup returns the dimension row index for a fact row's foreign key.
func (j *DimJoin) Lookup(fk int32) (int32, bool) {
	v, ok := j.table[fk]
	return v, ok
}

// Agg is one aggregation group's accumulator.
type Agg struct {
	Key string
	Sum int64
	N   int64
}

// GroupSum aggregates sum(value) grouped by key over the selection.
type GroupSum struct {
	groups map[string]*Agg
}

// NewGroupSum creates an empty aggregation state.
func NewGroupSum() *GroupSum { return &GroupSum{groups: map[string]*Agg{}} }

// Add accumulates value under key.
func (g *GroupSum) Add(key string, value int64) {
	a, ok := g.groups[key]
	if !ok {
		a = &Agg{Key: key}
		g.groups[key] = a
	}
	a.Sum += value
	a.N++
}

// Merge folds another partial aggregation into g — the combine step
// when query chunks execute as parallel Dandelion instances.
func (g *GroupSum) Merge(o *GroupSum) {
	for k, a := range o.groups {
		mine, ok := g.groups[k]
		if !ok {
			g.groups[k] = &Agg{Key: k, Sum: a.Sum, N: a.N}
			continue
		}
		mine.Sum += a.Sum
		mine.N += a.N
	}
}

// Rows returns the groups sorted by key.
func (g *GroupSum) Rows() []Agg {
	out := make([]Agg, 0, len(g.groups))
	for _, a := range g.groups {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Encode serializes the partial aggregation as lines "key\tsum\tn", the
// wire format between partial and merge compute functions.
func (g *GroupSum) Encode() []byte {
	var b strings.Builder
	for _, a := range g.Rows() {
		fmt.Fprintf(&b, "%s\t%d\t%d\n", a.Key, a.Sum, a.N)
	}
	return []byte(b.String())
}

// DecodeGroupSum parses the Encode format.
func DecodeGroupSum(data []byte) (*GroupSum, error) {
	g := NewGroupSum()
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 3 {
			return nil, fmt.Errorf("ssb: malformed partial row %q", line)
		}
		var sum, n int64
		if _, err := fmt.Sscanf(parts[1], "%d", &sum); err != nil {
			return nil, fmt.Errorf("ssb: bad sum in %q", line)
		}
		if _, err := fmt.Sscanf(parts[2], "%d", &n); err != nil {
			return nil, fmt.Errorf("ssb: bad count in %q", line)
		}
		a, ok := g.groups[parts[0]]
		if !ok {
			g.groups[parts[0]] = &Agg{Key: parts[0], Sum: sum, N: n}
		} else {
			a.Sum += sum
			a.N += n
		}
	}
	return g, nil
}
