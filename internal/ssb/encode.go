package ssb

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Chunk wire format: fact-table slices travel between the object store
// and Partial compute functions as little-endian column blocks:
// magic "SSB1", uint32 row count, then the ten int32 columns in
// declaration order.

var chunkMagic = [4]byte{'S', 'S', 'B', '1'}

// ErrBadChunk reports a malformed encoded chunk.
var ErrBadChunk = errors.New("ssb: malformed chunk")

// EncodeChunk serializes a fact-table slice.
func EncodeChunk(l *LineOrders) []byte {
	n := l.Len()
	out := make([]byte, 0, 8+n*BytesPerRow)
	out = append(out, chunkMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, uint32(n))
	for _, col := range l.columns() {
		for _, v := range col {
			out = binary.LittleEndian.AppendUint32(out, uint32(v))
		}
	}
	return out
}

// DecodeChunk parses an encoded fact-table slice.
func DecodeChunk(data []byte) (*LineOrders, error) {
	if len(data) < 8 || data[0] != chunkMagic[0] || data[1] != chunkMagic[1] ||
		data[2] != chunkMagic[2] || data[3] != chunkMagic[3] {
		return nil, fmt.Errorf("%w: bad magic", ErrBadChunk)
	}
	n := int(binary.LittleEndian.Uint32(data[4:8]))
	if n < 0 || 8+n*BytesPerRow != len(data) {
		return nil, fmt.Errorf("%w: %d rows vs %d bytes", ErrBadChunk, n, len(data))
	}
	l := &LineOrders{}
	off := 8
	for _, col := range l.columnPtrs() {
		*col = make([]int32, n)
		for i := 0; i < n; i++ {
			(*col)[i] = int32(binary.LittleEndian.Uint32(data[off:]))
			off += 4
		}
	}
	return l, nil
}

func (l *LineOrders) columns() [][]int32 {
	return [][]int32{
		l.OrderKey, l.CustKey, l.PartKey, l.SuppKey, l.OrderDate,
		l.Quantity, l.ExtendedPrice, l.Discount, l.Revenue, l.SupplyCost,
	}
}

func (l *LineOrders) columnPtrs() []*[]int32 {
	return []*[]int32{
		&l.OrderKey, &l.CustKey, &l.PartKey, &l.SuppKey, &l.OrderDate,
		&l.Quantity, &l.ExtendedPrice, &l.Discount, &l.Revenue, &l.SupplyCost,
	}
}
