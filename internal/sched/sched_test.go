package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dandelion/internal/engine"
)

// drain pops tasks from q one at a time, executing each synchronously,
// until the queue is momentarily empty. Executing a task triggers the
// scheduler's completion pump, so the observed execution order is the
// DRR dispatch order.
func drain(q *engine.Queue, limit int) int {
	n := 0
	for n < limit {
		t, ok := q.TryPop()
		if !ok {
			return n
		}
		t.Do()
		n++
	}
	return n
}

// TestDRRInterleavesTenants is the deterministic fairness core: one
// tenant floods 40 tasks, then an interactive tenant submits 2. With
// equal weights the interactive tasks must execute within roughly one
// window plus one DRR round — not behind the whole flood backlog.
func TestDRRInterleavesTenants(t *testing.T) {
	q := engine.NewQueue()
	defer q.Close()
	const window = 4
	s := New(q, Config{Window: window})

	var order []string
	var mu sync.Mutex
	submit := func(tenant string) {
		if err := s.Submit(tenant, Task{Do: func() {
			mu.Lock()
			order = append(order, tenant)
			mu.Unlock()
		}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		submit("flood")
	}
	submit("interactive")
	submit("interactive")
	if got := drain(q, 100); got != 42 {
		t.Fatalf("executed %d tasks, want 42", got)
	}

	last := -1
	for i, tenant := range order {
		if tenant == "interactive" {
			last = i
		}
	}
	// The window was already full of flood tasks when the interactive
	// tenant arrived; after those, DRR alternates. Both interactive
	// tasks must land within window + a couple of rounds.
	if last < 0 || last > window+6 {
		t.Fatalf("interactive tasks finished at position %d of %d: %v", last, len(order), order[:12])
	}
}

// TestDRRWeights checks weighted shares with a strict window of 1, where
// execution order equals dispatch order exactly: weight 2 gets two slots
// per round to weight 1's one.
func TestDRRWeights(t *testing.T) {
	q := engine.NewQueue()
	defer q.Close()
	s := New(q, Config{Window: 1, Weights: map[string]int{"a": 2, "b": 1}})

	var order []string
	var mu sync.Mutex
	for i := 0; i < 30; i++ {
		tenant := "a"
		if err := s.Submit(tenant, Task{Do: func() {
			mu.Lock()
			order = append(order, tenant)
			mu.Unlock()
		}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		tenant := "b"
		if err := s.Submit(tenant, Task{Do: func() {
			mu.Lock()
			order = append(order, tenant)
			mu.Unlock()
		}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := drain(q, 100); got != 60 {
		t.Fatalf("executed %d tasks, want 60", got)
	}
	a, b := 0, 0
	for _, tenant := range order[:30] {
		if tenant == "a" {
			a++
		} else {
			b++
		}
	}
	// Exactly 2:1 while both stay backlogged (±1 for round boundaries).
	if a < 19 || a > 21 || a+b != 30 {
		t.Fatalf("first 30 dispatches: a=%d b=%d, want ~20/10", a, b)
	}
}

func TestSubmitAfterCloseAndReject(t *testing.T) {
	q := engine.NewQueue()
	defer q.Close()
	s := New(q, Config{Window: 1})

	ran := make(chan struct{})
	if err := s.Submit("t", Task{Do: func() { close(ran) }}); err != nil {
		t.Fatal(err)
	}
	// Parked behind the window=1 slot: must be rejected on Close.
	var rejectedErr error
	if err := s.Submit("t", Task{
		Do:       func() { t.Error("parked task ran after Close") },
		OnReject: func(err error) { rejectedErr = err },
	}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if !errors.Is(rejectedErr, ErrClosed) {
		t.Fatalf("OnReject got %v, want ErrClosed", rejectedErr)
	}
	if err := s.Submit("t", Task{Do: func() {}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	// The already-dispatched task still runs.
	if got := drain(q, 10); got != 1 {
		t.Fatalf("drained %d, want 1", got)
	}
	<-ran
	st := s.Stats()
	if len(st) != 1 || st[0].Rejected != 1 || st[0].Completed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestGaugesAndDispatchWait drives a virtual clock: the second task is
// parked for 5ms of virtual time behind a window of 1, so its dispatch
// wait is exactly 5ms.
func TestGaugesAndDispatchWait(t *testing.T) {
	q := engine.NewQueue()
	defer q.Close()
	var now atomic.Int64 // virtual nanos
	clock := func() time.Time { return time.Unix(0, now.Load()) }
	s := New(q, Config{Window: 1, Now: clock})

	s.Submit("t", Task{Do: func() {}})
	s.Submit("t", Task{Do: func() {}})

	st := s.Stats()[0]
	if st.Queued != 1 || st.Running != 1 || st.Dispatched != 1 {
		t.Fatalf("pre-drain stats = %+v", st)
	}

	now.Store(int64(5 * time.Millisecond))
	if got := drain(q, 10); got != 2 {
		t.Fatalf("drained %d, want 2", got)
	}
	st = s.Stats()[0]
	if st.Queued != 0 || st.Running != 0 || st.Completed != 2 {
		t.Fatalf("post-drain stats = %+v", st)
	}
	// First task waited 0, second waited 5ms.
	if st.MaxDispatchWait != 5*time.Millisecond || st.P99DispatchWait != 5*time.Millisecond {
		t.Fatalf("waits = %+v", st)
	}
	if st.AvgDispatchWait != 2500*time.Microsecond {
		t.Fatalf("avg wait = %v", st.AvgDispatchWait)
	}
}

func TestMergeStats(t *testing.T) {
	a := []TenantStats{{Tenant: "x", Weight: 2, Dispatched: 3, Completed: 3,
		AvgDispatchWait: 10 * time.Millisecond, P99DispatchWait: 20 * time.Millisecond}}
	b := []TenantStats{
		{Tenant: "x", Weight: 2, Dispatched: 1, Completed: 1,
			AvgDispatchWait: 2 * time.Millisecond, MaxDispatchWait: 30 * time.Millisecond},
		{Tenant: "y", Queued: 4},
	}
	m := MergeStats(a, b)
	if len(m) != 2 || m[0].Tenant != "x" || m[1].Tenant != "y" {
		t.Fatalf("merged = %+v", m)
	}
	x := m[0]
	if x.Dispatched != 4 || x.Completed != 4 || x.Weight != 2 {
		t.Fatalf("x counts = %+v", x)
	}
	if x.AvgDispatchWait != 8*time.Millisecond { // (3·10 + 1·2) / 4
		t.Fatalf("x avg = %v", x.AvgDispatchWait)
	}
	if x.P99DispatchWait != 20*time.Millisecond || x.MaxDispatchWait != 30*time.Millisecond {
		t.Fatalf("x tails = %+v", x)
	}
}

// TestConcurrentSubmitWithPool stresses the scheduler against a real
// engine pool under -race: many goroutines submitting across tenants
// while engines execute and the refill pump runs on completions.
func TestConcurrentSubmitWithPool(t *testing.T) {
	q := engine.NewQueue()
	pool := engine.NewPool(engine.Compute, q)
	pool.SetCount(4)
	defer pool.Shutdown()
	s := New(q, Config{WindowFn: func() int { return 2 * pool.Count() }})

	const tenants, perTenant = 4, 500
	var done sync.WaitGroup
	var executed atomic.Int64
	tenantNames := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		tenant := tenantNames[ti]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				done.Add(1)
				if err := s.Submit(tenant, Task{Do: func() {
					executed.Add(1)
					done.Done()
				}}); err != nil {
					t.Error(err)
					done.Done()
				}
			}
		}()
	}
	wg.Wait()
	done.Wait()
	if executed.Load() != tenants*perTenant {
		t.Fatalf("executed = %d", executed.Load())
	}
	var total uint64
	for _, st := range s.Stats() {
		if st.Queued != 0 || st.Running != 0 {
			t.Fatalf("leftover work: %+v", st)
		}
		total += st.Completed
	}
	if total != tenants*perTenant {
		t.Fatalf("completed total = %d", total)
	}
	s.Close()
}

// TestShare covers the weighted dispatch-share query behind sched-aware
// batch chunking. Tasks are parked (window 0 is impossible, so a
// 1-slot window with a blocked queue keeps backlogs resident).
func TestShare(t *testing.T) {
	q := engine.NewQueue()
	defer q.Close()
	s := New(q, Config{Window: 1, Weights: map[string]int{"heavy": 3}})
	defer s.Close()

	// Nobody active: everyone's share is 1, known or unknown tenants.
	if got := s.Share("alice"); got != 1 {
		t.Fatalf("idle Share(alice) = %v, want 1", got)
	}
	if got := s.Share(""); got != 1 {
		t.Fatalf("idle Share(default) = %v, want 1", got)
	}

	// Park work for two tenants (no engine drains the queue, and the
	// 1-slot window keeps all but one task in the tenant FIFOs).
	for i := 0; i < 3; i++ {
		if err := s.Submit("heavy", Task{Do: func() {}}); err != nil {
			t.Fatal(err)
		}
		if err := s.Submit("light", Task{Do: func() {}}); err != nil {
			t.Fatal(err)
		}
	}
	// heavy(3) + light(1) active. A third, idle tenant of weight 1
	// counts itself: 1 / (1+3+1).
	if got := s.Share("alice"); got != 0.2 {
		t.Fatalf("Share(alice) = %v, want 0.2", got)
	}
	// Active tenants count themselves once, by weight.
	if got := s.Share("heavy"); got != 0.75 {
		t.Fatalf("Share(heavy) = %v, want 0.75", got)
	}
	if got := s.Share("light"); got != 0.25 {
		t.Fatalf("Share(light) = %v, want 0.25", got)
	}
	drain(q, 100)
}

// TestWeightHardening pins the clamp-to-≥1 contract of the whole weight
// path: seed weights, runtime updates, and the Weight/Share/Stats read
// side all treat non-positive weights as 1, and Share never degenerates
// for unknown or removed-from-active tenants.
func TestWeightHardening(t *testing.T) {
	q := engine.NewQueue()
	defer q.Close()
	s := New(q, Config{Window: 1, Weights: map[string]int{"zero": 0, "neg": -7, "ok": 3}})

	if w := s.Weight("zero"); w != 1 {
		t.Fatalf("seed weight 0 clamped to %d, want 1", w)
	}
	if w := s.Weight("neg"); w != 1 {
		t.Fatalf("seed weight -7 clamped to %d, want 1", w)
	}
	if w := s.Weight("ok"); w != 3 {
		t.Fatalf("weight ok = %d, want 3", w)
	}
	if w := s.Weight("never-seen"); w != 1 {
		t.Fatalf("unknown tenant weight = %d, want 1", w)
	}

	// Runtime updates clamp too.
	s.SetWeight("zero", 0)
	s.SetWeight("neg", -100)
	for _, tenant := range []string{"zero", "neg"} {
		if w := s.Weight(tenant); w != 1 {
			t.Fatalf("SetWeight(%s, <=0) stored %d, want 1", tenant, w)
		}
	}

	// Share stays in (0, 1] and finite in every degenerate shape: no
	// tenants active, tenant unknown, and empty tenant name.
	for _, tenant := range []string{"zero", "never-seen", ""} {
		sh := s.Share(tenant)
		if !(sh > 0 && sh <= 1) {
			t.Fatalf("Share(%q) = %v, want in (0, 1]", tenant, sh)
		}
	}

	// Stats reports the clamped weights, never the raw stored values.
	s.Submit("zero", Task{Do: func() {}})
	drain(q, 1)
	for _, st := range s.Stats() {
		if st.Weight < 1 {
			t.Fatalf("Stats weight for %s = %d, want >= 1", st.Tenant, st.Weight)
		}
	}
}

// TestZeroWeightTenantStillDispatches drives a backlogged tenant whose
// weight was pushed to the minimum alongside an active competitor: the
// clamp at credit time guarantees it earns ≥1 credit per round, so the
// refill loop can never spin without dispatching.
func TestZeroWeightTenantStillDispatches(t *testing.T) {
	q := engine.NewQueue()
	defer q.Close()
	s := New(q, Config{Window: 2})
	s.SetWeight("small", -1) // clamped to 1

	var small, big atomic.Int64
	for i := 0; i < 10; i++ {
		s.Submit("small", Task{Do: func() { small.Add(1) }})
		s.Submit("big", Task{Do: func() { big.Add(1) }})
	}
	if got := drain(q, 100); got != 20 {
		t.Fatalf("executed %d, want 20", got)
	}
	if small.Load() != 10 || big.Load() != 10 {
		t.Fatalf("small=%d big=%d, want 10/10", small.Load(), big.Load())
	}
}

// TestShareAfterTenantsDrain: a tenant whose competitors have all gone
// idle (removed from the active set) regains share 1 exactly.
func TestShareAfterTenantsDrain(t *testing.T) {
	q := engine.NewQueue()
	defer q.Close()
	s := New(q, Config{Window: 1, Weights: map[string]int{"a": 2}})

	s.Submit("a", Task{Do: func() {}})
	s.Submit("b", Task{Do: func() {}})
	// Both active: a has weight 2 of total 3.
	if sh := s.Share("a"); sh < 0.6 || sh > 0.7 {
		t.Fatalf("Share(a) with b active = %v, want 2/3", sh)
	}
	drain(q, 2)
	// b drained and idle: a is alone again.
	if sh := s.Share("a"); sh != 1 {
		t.Fatalf("Share(a) after drain = %v, want 1", sh)
	}
}

// TestDoShardedDispatch checks that sharded tasks flow through DRR
// dispatch with the window accounting intact: the wrapper must hand the
// engine's shard index to the closure and still free the window slot on
// completion so the backlog keeps draining.
func TestDoShardedDispatch(t *testing.T) {
	q := engine.NewQueue()
	defer q.Close()
	s := New(q, Config{Window: 1})

	var shards []int
	var mu sync.Mutex
	for i := 0; i < 8; i++ {
		if err := s.Submit("t", Task{DoSharded: func(shard int) {
			mu.Lock()
			shards = append(shards, shard)
			mu.Unlock()
		}}); err != nil {
			t.Fatal(err)
		}
	}
	// Drain executing each task with a distinct engine shard ID. With a
	// window of 1, each completion must re-pump the next dispatch.
	ran := 0
	for ran < 8 {
		tk, ok := q.TryPop()
		if !ok {
			break
		}
		if tk.DoSharded == nil {
			t.Fatalf("dispatched task %d lost its DoSharded wrapper", ran)
		}
		tk.DoSharded(ran)
		ran++
	}
	if ran != 8 {
		t.Fatalf("executed %d tasks, want 8 (window slot not freed?)", ran)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, sh := range shards {
		if sh != i {
			t.Fatalf("task %d saw shard %d, want %d (%v)", i, sh, i, shards)
		}
	}
}
