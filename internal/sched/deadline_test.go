package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dandelion/internal/engine"
)

// virtualClock is a mutex-guarded manual clock for deadline tests.
type virtualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newVirtualClock() *virtualClock {
	return &virtualClock{now: time.Unix(1000, 0)}
}

func (c *virtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *virtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestDeadlineExpiredDroppedAtDispatch parks a deadlined task behind a
// window=1 blocker, lets the deadline lapse, and checks the entry is
// dropped at dispatch time: OnReject(ErrExpired) fires, Do never runs,
// and the per-tenant Expired counter ticks.
func TestDeadlineExpiredDroppedAtDispatch(t *testing.T) {
	q := engine.NewQueue()
	defer q.Close()
	clock := newVirtualClock()
	s := New(q, Config{Window: 1, Now: clock.Now})

	blockerRan := false
	if err := s.Submit("t", Task{Do: func() { blockerRan = true }}); err != nil {
		t.Fatal(err)
	}
	var ran atomic.Bool
	var rejectErr error
	if err := s.Submit("t", Task{
		Do:       func() { ran.Store(true) },
		OnReject: func(err error) { rejectErr = err },
		Deadline: clock.Now().Add(10 * time.Millisecond),
	}); err != nil {
		t.Fatal(err)
	}

	// The deadline lapses while the entry is parked behind the blocker.
	clock.Advance(20 * time.Millisecond)
	if got := drain(q, 10); got != 1 {
		t.Fatalf("executed %d tasks, want 1 (the blocker)", got)
	}
	if !blockerRan {
		t.Fatal("blocker never ran")
	}
	if ran.Load() {
		t.Fatal("expired task executed")
	}
	if !errors.Is(rejectErr, ErrExpired) {
		t.Fatalf("OnReject got %v, want ErrExpired", rejectErr)
	}

	stats := s.Stats()
	if len(stats) != 1 || stats[0].Expired != 1 {
		t.Fatalf("stats = %+v, want Expired=1", stats)
	}
	if stats[0].Completed != 1 || stats[0].Dispatched != 1 {
		t.Fatalf("stats = %+v, want Dispatched=Completed=1 (expired entries are neither)", stats[0])
	}
}

// TestDeadlineExpiredCountersExact checks the per-tenant Expired
// counters are exact when several tenants mix live and doomed entries.
func TestDeadlineExpiredCountersExact(t *testing.T) {
	q := engine.NewQueue()
	defer q.Close()
	clock := newVirtualClock()
	s := New(q, Config{Window: 1, Now: clock.Now})

	// One blocker holds the single window slot so everything else parks.
	if err := s.Submit("a", Task{Do: func() {}}); err != nil {
		t.Fatal(err)
	}
	doomed := clock.Now().Add(5 * time.Millisecond)
	live := clock.Now().Add(time.Hour)
	for i := 0; i < 3; i++ {
		if err := s.Submit("a", Task{Do: func() {}, Deadline: doomed}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := s.Submit("b", Task{Do: func() {}, Deadline: doomed}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Submit("b", Task{Do: func() {}, Deadline: live}); err != nil {
		t.Fatal(err)
	}

	clock.Advance(10 * time.Millisecond)
	// Blocker + b's one live entry execute; a's 3 and b's 2 doomed
	// entries are dropped on the way.
	if got := drain(q, 10); got != 2 {
		t.Fatalf("executed %d tasks, want 2", got)
	}

	var a, b TenantStats
	for _, st := range s.Stats() {
		switch st.Tenant {
		case "a":
			a = st
		case "b":
			b = st
		}
	}
	if a.Expired != 3 || a.Completed != 1 {
		t.Fatalf("tenant a = %+v, want Expired=3 Completed=1", a)
	}
	if b.Expired != 2 || b.Completed != 1 {
		t.Fatalf("tenant b = %+v, want Expired=2 Completed=1", b)
	}
}

// TestInteractiveDeadlinesSurviveFlood is the two-tenant robustness
// criterion: a flood tenant parks a 40-task backlog, each task costing
// 1ms of (virtual) time. An interactive tenant then submits two tasks
// whose deadline only fits if DRR interleaves them near the front —
// FIFO behind the flood would need 40ms against a 15ms budget. Both
// must execute; nothing of the interactive tenant may expire.
func TestInteractiveDeadlinesSurviveFlood(t *testing.T) {
	q := engine.NewQueue()
	defer q.Close()
	clock := newVirtualClock()
	s := New(q, Config{Window: 4, Now: clock.Now})

	// Every executed task advances the virtual clock by 1ms — the
	// simulated service time the interactive deadline is racing.
	work := func() { clock.Advance(time.Millisecond) }
	for i := 0; i < 40; i++ {
		if err := s.Submit("flood", Task{Do: work}); err != nil {
			t.Fatal(err)
		}
	}
	var interactiveRan atomic.Int64
	deadline := clock.Now().Add(15 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if err := s.Submit("interactive", Task{
			Do:       func() { interactiveRan.Add(1); work() },
			Deadline: deadline,
		}); err != nil {
			t.Fatal(err)
		}
	}

	if got := drain(q, 100); got != 42 {
		t.Fatalf("executed %d tasks, want 42", got)
	}
	if n := interactiveRan.Load(); n != 2 {
		t.Fatalf("interactive tasks executed = %d, want 2", n)
	}
	for _, st := range s.Stats() {
		if st.Tenant == "interactive" && st.Expired != 0 {
			t.Fatalf("interactive Expired = %d, want 0: %+v", st.Expired, st)
		}
	}
}

// TestDeadlineConcurrentExpiry hammers Submit with mixed live and
// already-expired deadlines from many goroutines while engines drain
// concurrently — the -race exercise for the expiry path. Every task
// must be accounted exactly once: executed or expired.
func TestDeadlineConcurrentExpiry(t *testing.T) {
	q := engine.NewQueue()
	defer q.Close()
	pool := engine.NewPool(engine.Compute, q)
	pool.SetCount(4)
	defer pool.SetCount(0)
	s := New(q, Config{WindowFn: func() int { return 8 }})

	const (
		submitters = 8
		perG       = 200
	)
	var executed, rejected atomic.Int64
	var wg sync.WaitGroup
	past := time.Now().Add(-time.Hour)
	for g := 0; g < submitters; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				task := Task{
					Do:       func() { executed.Add(1) },
					OnReject: func(error) { rejected.Add(1) },
				}
				if (g+i)%3 == 0 {
					task.Deadline = past // doomed the moment it parks
				}
				if err := s.Submit("t", task); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	deadlineAt := time.Now().Add(5 * time.Second)
	for executed.Load()+rejected.Load() < submitters*perG {
		if time.Now().After(deadlineAt) {
			t.Fatalf("stalled: executed=%d rejected=%d of %d",
				executed.Load(), rejected.Load(), submitters*perG)
		}
		time.Sleep(time.Millisecond)
	}
	if got := executed.Load() + rejected.Load(); got != submitters*perG {
		t.Fatalf("accounted %d tasks, want %d", got, submitters*perG)
	}
	var expired uint64
	for _, st := range s.Stats() {
		expired += st.Expired
	}
	if expired != uint64(rejected.Load()) {
		t.Fatalf("Expired counter = %d, rejected callbacks = %d", expired, rejected.Load())
	}
}

// TestOldestWait checks the shed signal: empty backlogs report zero,
// and a parked head entry's age tracks the clock.
func TestOldestWait(t *testing.T) {
	q := engine.NewQueue()
	defer q.Close()
	clock := newVirtualClock()
	s := New(q, Config{Window: 1, Now: clock.Now})

	if w := s.OldestWait("t"); w != 0 {
		t.Fatalf("OldestWait(unknown tenant) = %v, want 0", w)
	}
	if err := s.Submit("t", Task{Do: func() {}}); err != nil { // takes the window slot
		t.Fatal(err)
	}
	if w := s.OldestWait("t"); w != 0 {
		t.Fatalf("OldestWait(no backlog) = %v, want 0", w)
	}
	if err := s.Submit("t", Task{Do: func() {}}); err != nil { // parks
		t.Fatal(err)
	}
	clock.Advance(30 * time.Millisecond)
	if w := s.OldestWait("t"); w != 30*time.Millisecond {
		t.Fatalf("OldestWait = %v, want 30ms", w)
	}
	drain(q, 10)
	if w := s.OldestWait("t"); w != 0 {
		t.Fatalf("OldestWait(drained) = %v, want 0", w)
	}
}
