// Package sched is the multi-tenant scheduling plane layered between
// the dispatcher (internal/core) and the sharded work-stealing engine
// queue (internal/engine). The engine queue stays throughput-oriented —
// engines still refill shards and steal — but tasks no longer enter it
// directly: every dispatch is submitted here under a tenant identity,
// parked in that tenant's FIFO, and released into the engine queue by a
// deficit-round-robin (DRR) refill loop.
//
// Fairness comes from two mechanisms working together:
//
//   - A bounded dispatch window: at most Window tasks are in the engine
//     layer (queued or running) at once, so a tenant cannot bury the
//     engine queue under a giant backlog; the backlog stays here, where
//     it is per-tenant.
//   - DRR refill: when a window slot frees (a task completes), the next
//     task is drawn from the backlogged tenants in deficit round robin,
//     each tenant earning Quantum×weight dispatch credits per round.
//     With unit-cost tasks a weight-2 tenant gets twice the dispatch
//     slots of a weight-1 tenant, and an interactive tenant's task is
//     dispatched after at most one round regardless of how deep another
//     tenant's backlog is.
//
// The scheduler also owns the per-tenant observability the fairness
// work is judged by: queued/running/completed gauges and dispatch-wait
// (Submit→engine-queue Push) average, p99, and max.
package sched

import (
	"errors"
	"runtime"
	"sort"
	"sync"
	"time"

	"dandelion/internal/engine"
)

// DefaultTenant is the identity used when a caller supplies none.
const DefaultTenant = "default"

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("sched: scheduler closed")

// ErrExpired is passed to a task's OnReject when its Deadline passed
// while the task was still parked: the scheduler drops expired entries
// at dispatch time instead of burning an engine on work whose caller
// has already given up.
var ErrExpired = errors.New("sched: task deadline expired before dispatch")

// waitRingSize bounds the per-tenant dispatch-wait sample ring backing
// the percentile gauges; older samples are overwritten.
const waitRingSize = 512

// Task is one unit of work submitted on behalf of a tenant.
type Task struct {
	// Do performs the work; exactly one of Do and DoSharded must be
	// non-nil.
	Do func()
	// DoSharded, when set, is preferred over Do and receives the
	// executing engine's stable shard index (see engine.Task.DoSharded).
	DoSharded func(shard int)
	// OnReject, when non-nil, is called instead of Do if the task is
	// dropped after admission: because the scheduler or the underlying
	// engine queue closed (ErrClosed / the queue's error), or because
	// Deadline passed before dispatch (ErrExpired). It may run under
	// scheduler locks and must not call back into the Scheduler.
	OnReject func(error)
	// Bytes is the task's payload weight — the cumulative input bytes
	// it will move through an engine. Only read under Config.
	// ByteFairness, where the DRR deficit charges bytes instead of
	// task counts; zero (unknown) charges the minimum cost.
	Bytes int64
	// Deadline, when non-zero, is the instant after which the task is no
	// longer worth running. An entry whose deadline has passed by the
	// time the DRR refill loop reaches it is dropped — OnReject(ErrExpired),
	// never executed, no window slot consumed.
	Deadline time.Time
}

// Config parameterizes a Scheduler. The zero value is usable.
type Config struct {
	// Quantum is the dispatch credit a backlogged tenant earns per DRR
	// round per unit of weight (default 1).
	Quantum int
	// Window bounds dispatched-but-unfinished tasks in the engine layer.
	// Zero consults WindowFn; if that is also nil, 2×GOMAXPROCS.
	Window int
	// WindowFn, used when Window is 0, is consulted on every refill so
	// the window can track a resizable engine pool.
	WindowFn func() int
	// Weights seeds per-tenant weights; unlisted tenants get weight 1.
	Weights map[string]int
	// ByteFairness switches the DRR deficit from task counts to payload
	// bytes: a backlogged tenant earns ByteQuantum×weight byte credits
	// per round and each dispatch charges the task's Bytes (minimum
	// minByteCost), so a tenant of 1 MiB analytics scans consumes its
	// round on a handful of tasks while an equal-weight tenant of tiny
	// interactive invokes dispatches hundreds — equal *bytes*, not
	// equal task slots. A dispatch may overdraw the deficit (the head
	// task always goes through once credit is positive — no head-of-
	// line starvation for oversized tasks); the debt carries into the
	// next round's credit.
	ByteFairness bool
	// ByteQuantum is the byte credit per DRR round per unit weight
	// under ByteFairness (default DefaultByteQuantum).
	ByteQuantum int64
	// Now is the clock behind the dispatch-wait gauges (default
	// time.Now); tests inject a virtual clock.
	Now func() time.Time
}

// DefaultByteQuantum is the per-round byte credit of a weight-1 tenant
// under ByteFairness: 1 MiB, one large-payload invocation's worth.
const DefaultByteQuantum int64 = 1 << 20

// minByteCost is the floor a dispatch charges under ByteFairness, so
// zero-byte (or unknown-size) tasks still consume credit and a round
// over a deep tiny-task backlog terminates: at 4 KiB, a weight-1
// tenant dispatches at most 256 tiny tasks per round.
const minByteCost int64 = 4 << 10

// Scheduler fronts one engine queue with per-tenant DRR dispatch. It is
// safe for concurrent use.
type Scheduler struct {
	q   *engine.Queue
	cfg Config

	mu       sync.Mutex
	tenants  map[string]*tenantQueue
	active   []*tenantQueue // backlogged tenants, round-robin order
	cursor   int
	inflight int
	closed   bool
}

// entry is one parked task plus its admission time.
type entry struct {
	task Task
	at   time.Time
}

// tenantQueue is one tenant's backlog and gauges.
type tenantQueue struct {
	name   string
	weight int
	// deficit is the tenant's remaining dispatch credit this round: task
	// counts by default, bytes under Config.ByteFairness. It may go
	// negative when a dispatch overdraws (byte mode only); the debt is
	// repaid out of the next round's credit.
	deficit int64
	charged bool // earned this round's credit and not yet left the round
	backlog []entry

	running    int
	completed  uint64
	rejected   uint64
	expired    uint64
	dispatched uint64
	waitSum    time.Duration
	waitMax    time.Duration
	waits      []time.Duration // ring of recent waits, ≤ waitRingSize
	waitPos    int
}

// New creates a scheduler feeding q.
func New(q *engine.Queue, cfg Config) *Scheduler {
	if cfg.Quantum < 1 {
		cfg.Quantum = 1
	}
	if cfg.ByteQuantum < 1 {
		cfg.ByteQuantum = DefaultByteQuantum
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Scheduler{q: q, cfg: cfg, tenants: map[string]*tenantQueue{}}
	for name, w := range cfg.Weights {
		s.tenantLocked(name).weight = clampWeight(w)
	}
	return s
}

func clampWeight(w int) int {
	if w < 1 {
		return 1
	}
	return w
}

// tenantLocked returns the tenant's queue, creating it at weight 1.
func (s *Scheduler) tenantLocked(name string) *tenantQueue {
	tq := s.tenants[name]
	if tq == nil {
		tq = &tenantQueue{name: name, weight: 1}
		s.tenants[name] = tq
	}
	return tq
}

// Share reports the tenant's weighted dispatch share in (0, 1]: its
// DRR weight over the summed weights of all currently active tenants
// (those with parked or running work), the tenant itself always
// included. A tenant alone on the scheduler has share 1. Callers use
// it to right-size work granularity — e.g. the dispatcher's
// sched-aware batch chunking splits a contending tenant's work list
// into chunks shrunk by its share, so the DRR refill loop can
// interleave other tenants between chunks.
//
// Share is hardened against degenerate states: weights are re-clamped
// to ≥1 as they are read (so a zero weight that slipped past the
// setters can never zero a numerator or denominator), an unknown
// tenant counts as weight 1, and with no active competitors the result
// is exactly 1 — never 0, NaN, or Inf, whatever the tenant map holds.
func (s *Scheduler) Share(tenant string) float64 {
	if tenant == "" {
		tenant = DefaultTenant
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	mine := 1
	if tq := s.tenants[tenant]; tq != nil {
		mine = clampWeight(tq.weight)
	}
	total := mine
	for name, tq := range s.tenants {
		if name == tenant {
			continue
		}
		if len(tq.backlog) > 0 || tq.running > 0 {
			total += clampWeight(tq.weight)
		}
	}
	if total < mine {
		// Unreachable with clamped addends; keeps the contract ≤1 even so.
		total = mine
	}
	return float64(mine) / float64(total)
}

// Weight reports a tenant's current DRR weight. Tenants the scheduler
// has never seen report the default weight 1.
func (s *Scheduler) Weight(tenant string) int {
	if tenant == "" {
		tenant = DefaultTenant
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if tq := s.tenants[tenant]; tq != nil {
		return clampWeight(tq.weight)
	}
	return 1
}

// SetWeight sets a tenant's DRR weight (minimum 1). It applies from the
// next refill round.
func (s *Scheduler) SetWeight(tenant string, w int) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	s.mu.Lock()
	s.tenantLocked(tenant).weight = clampWeight(w)
	s.mu.Unlock()
}

// Submit admits one task under the tenant identity ("" means
// DefaultTenant). Once admitted, the task's Do eventually runs on an
// engine, or OnReject is called if the scheduler or queue closes first.
// Submit itself returns ErrClosed (without calling OnReject) when the
// scheduler has already closed.
func (s *Scheduler) Submit(tenant string, t Task) error {
	if tenant == "" {
		tenant = DefaultTenant
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	tq := s.tenantLocked(tenant)
	if len(tq.backlog) == 0 && !tq.charged {
		s.active = append(s.active, tq)
	}
	tq.backlog = append(tq.backlog, entry{task: t, at: s.cfg.Now()})
	s.pumpLocked()
	s.mu.Unlock()
	return nil
}

// window resolves the current dispatch-window size (≥1).
func (s *Scheduler) window() int {
	w := s.cfg.Window
	if w <= 0 && s.cfg.WindowFn != nil {
		w = s.cfg.WindowFn()
	}
	if w <= 0 {
		w = 2 * runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// pumpLocked is the DRR refill loop: while window slots are free and
// tenants are backlogged, earn credit round-robin and dispatch.
func (s *Scheduler) pumpLocked() {
	if s.closed {
		return
	}
	window := s.window()
	for len(s.active) > 0 && s.inflight < window {
		if s.cursor >= len(s.active) {
			s.cursor = 0
		}
		tq := s.active[s.cursor]
		if !tq.charged {
			// clampWeight again at credit time: a weight that somehow hit
			// zero would earn no credit forever, and the refill loop would
			// spin over a backlogged tenant it can never dispatch. Under
			// ByteFairness the credit adds onto any negative carry from a
			// round that overdrew, so byte debt is repaid before new work
			// dispatches.
			tq.deficit += s.roundCredit(tq)
			tq.charged = true
		}
		for s.inflight < window && len(tq.backlog) > 0 && tq.deficit > 0 {
			tq.deficit -= s.dispatchLocked(tq)
		}
		if len(tq.backlog) == 0 {
			// Drained: forfeit leftover credit — and any byte debt, as in
			// classic DRR's empty-queue reset — and leave the round; the
			// cursor now points at the next tenant.
			tq.deficit = 0
			tq.charged = false
			s.active = append(s.active[:s.cursor], s.active[s.cursor+1:]...)
			continue
		}
		if tq.deficit > 0 {
			// Window filled mid-allowance; resume here on completion.
			return
		}
		tq.charged = false
		s.cursor++
	}
}

// roundCredit is the dispatch credit a tenant earns per DRR round:
// weight × Quantum task slots, or weight × ByteQuantum bytes under
// ByteFairness.
func (s *Scheduler) roundCredit(tq *tenantQueue) int64 {
	w := int64(clampWeight(tq.weight))
	if s.cfg.ByteFairness {
		return w * s.cfg.ByteQuantum
	}
	return w * int64(s.cfg.Quantum)
}

// taskCost is what one dispatch charges against the deficit: 1 task
// slot, or the task's payload bytes (floored at minByteCost) under
// ByteFairness.
func (s *Scheduler) taskCost(t Task) int64 {
	if !s.cfg.ByteFairness {
		return 1
	}
	if t.Bytes < minByteCost {
		return minByteCost
	}
	return t.Bytes
}

// dispatchLocked moves one task from the tenant backlog into the engine
// queue, wrapping it so completion frees the window slot and re-pumps,
// and returns the dispatched task's deficit cost (0 if expired entries
// drained the backlog and nothing dispatched). Entries whose deadline
// already passed are dropped on the way — they never reach an engine,
// never consume a window slot, and charge nothing; the loop keeps
// popping until it dispatches a live entry or drains the backlog.
func (s *Scheduler) dispatchLocked(tq *tenantQueue) int64 {
	var e entry
	for {
		if len(tq.backlog) == 0 {
			return 0
		}
		e = tq.backlog[0]
		tq.backlog[0] = entry{} // drop the closure reference
		tq.backlog = tq.backlog[1:]
		d := e.task.Deadline
		if d.IsZero() || s.cfg.Now().Before(d) {
			break
		}
		tq.expired++
		if e.task.OnReject != nil {
			e.task.OnReject(ErrExpired)
		}
	}
	tq.recordWait(s.cfg.Now().Sub(e.at))
	s.inflight++
	tq.running++
	tq.dispatched++
	name := tq.name
	var wrapped engine.Task
	if doSharded := e.task.DoSharded; doSharded != nil {
		wrapped.DoSharded = func(shard int) {
			defer s.taskDone(name)
			doSharded(shard)
		}
	} else {
		do := e.task.Do
		wrapped.Do = func() {
			defer s.taskDone(name)
			if do != nil {
				do()
			}
		}
	}
	err := s.q.Push(wrapped)
	if err != nil {
		s.inflight--
		tq.running--
		tq.rejected++
		if e.task.OnReject != nil {
			e.task.OnReject(err)
		}
		return 0 // never reached an engine: charge nothing
	}
	return s.taskCost(e.task)
}

// taskDone runs on the engine worker after a task finishes: it frees
// the window slot and refills via DRR — the "engines steal, DRR
// refills" contract.
func (s *Scheduler) taskDone(tenant string) {
	s.mu.Lock()
	if tq := s.tenants[tenant]; tq != nil {
		tq.running--
		tq.completed++
	}
	s.inflight--
	s.pumpLocked()
	s.mu.Unlock()
}

func (tq *tenantQueue) recordWait(w time.Duration) {
	if w < 0 {
		w = 0
	}
	tq.waitSum += w
	if w > tq.waitMax {
		tq.waitMax = w
	}
	if len(tq.waits) < waitRingSize {
		tq.waits = append(tq.waits, w)
		return
	}
	tq.waits[tq.waitPos] = w
	tq.waitPos = (tq.waitPos + 1) % waitRingSize
}

// OldestWait reports how long the tenant's oldest parked entry has been
// waiting for dispatch (0 with nothing parked). A non-empty backlog
// means the dispatch window is saturated for this tenant right now, so
// the head's age is a lower bound on any new submission's queueing
// delay — the frontend's overload shed compares it against an incoming
// request's deadline budget.
func (s *Scheduler) OldestWait(tenant string) time.Duration {
	if tenant == "" {
		tenant = DefaultTenant
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tq := s.tenants[tenant]
	if tq == nil || len(tq.backlog) == 0 {
		return 0
	}
	w := s.cfg.Now().Sub(tq.backlog[0].at)
	if w < 0 {
		w = 0
	}
	return w
}

// Close rejects every parked task (OnReject(ErrClosed)) and makes all
// later Submits fail. Tasks already in the engine queue still run.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var rejected []Task
	for _, tq := range s.tenants {
		for _, e := range tq.backlog {
			tq.rejected++
			rejected = append(rejected, e.task)
		}
		tq.backlog = nil
		tq.deficit = 0
		tq.charged = false
	}
	s.active = nil
	s.mu.Unlock()
	for _, t := range rejected {
		if t.OnReject != nil {
			t.OnReject(ErrClosed)
		}
	}
}

// TenantStats is one tenant's scheduling gauges.
type TenantStats struct {
	// Tenant is the identity; Weight its DRR share.
	Tenant string
	Weight int
	// Queued counts tasks parked here awaiting dispatch; Running counts
	// tasks released to the engine layer and not yet finished.
	Queued  int
	Running int
	// Dispatched/Completed/Rejected are cumulative task counts; Expired
	// counts entries dropped at dispatch time because their deadline had
	// already passed (never executed, not counted in Dispatched).
	Dispatched uint64
	Completed  uint64
	Rejected   uint64
	Expired    uint64
	// Dispatch-wait is the Submit→dispatch delay: Avg over all tasks,
	// P99 over the most recent waitRingSize samples, Max over all.
	AvgDispatchWait time.Duration
	P99DispatchWait time.Duration
	MaxDispatchWait time.Duration
}

// Stats snapshots every tenant's gauges, sorted by tenant name.
func (s *Scheduler) Stats() []TenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantStats, 0, len(s.tenants))
	for _, tq := range s.tenants {
		st := TenantStats{
			Tenant:          tq.name,
			Weight:          clampWeight(tq.weight),
			Queued:          len(tq.backlog),
			Running:         tq.running,
			Dispatched:      tq.dispatched,
			Completed:       tq.completed,
			Rejected:        tq.rejected,
			Expired:         tq.expired,
			MaxDispatchWait: tq.waitMax,
		}
		if tq.dispatched > 0 {
			st.AvgDispatchWait = tq.waitSum / time.Duration(tq.dispatched)
		}
		if len(tq.waits) > 0 {
			sorted := append([]time.Duration(nil), tq.waits...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			rank := int(0.99*float64(len(sorted))+0.5) - 1
			if rank < 0 {
				rank = 0
			}
			if rank >= len(sorted) {
				rank = len(sorted) - 1
			}
			st.P99DispatchWait = sorted[rank]
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// MergeStats combines per-scheduler tenant gauges (e.g. compute + comm
// planes) into one list keyed by tenant: counts add, averages weight by
// dispatch count, percentiles and maxima take the worst, and the weight
// is taken from the first list that knows the tenant.
func MergeStats(lists ...[]TenantStats) []TenantStats {
	byName := map[string]*TenantStats{}
	var order []string
	for _, list := range lists {
		for _, st := range list {
			m := byName[st.Tenant]
			if m == nil {
				cp := st
				byName[st.Tenant] = &cp
				order = append(order, st.Tenant)
				continue
			}
			total := m.Dispatched + st.Dispatched
			if total > 0 {
				m.AvgDispatchWait = time.Duration(
					(int64(m.AvgDispatchWait)*int64(m.Dispatched) +
						int64(st.AvgDispatchWait)*int64(st.Dispatched)) / int64(total))
			}
			m.Queued += st.Queued
			m.Running += st.Running
			m.Dispatched = total
			m.Completed += st.Completed
			m.Rejected += st.Rejected
			m.Expired += st.Expired
			if st.P99DispatchWait > m.P99DispatchWait {
				m.P99DispatchWait = st.P99DispatchWait
			}
			if st.MaxDispatchWait > m.MaxDispatchWait {
				m.MaxDispatchWait = st.MaxDispatchWait
			}
		}
	}
	out := make([]TenantStats, 0, len(order))
	sort.Strings(order)
	for _, n := range order {
		out = append(out, *byName[n])
	}
	return out
}
