// Package graph defines the semantic model of Dandelion compositions: a
// DAG whose vertices are compute functions, communication functions, or
// nested compositions, and whose edges carry set-distribution metadata
// (`all`, `each`, `key` — §4.1 of the paper).
//
// The DSL front end (internal/dsl) parses composition text into this
// model; the dispatcher (internal/core) executes it.
package graph

import (
	"errors"
	"fmt"
)

// Mode says how the items of a value are distributed to instances of the
// consuming function (§4.1).
type Mode uint8

const (
	// All items go to a single instance.
	All Mode = iota
	// Each item goes to its own instance.
	Each
	// Key groups items by Item.Key; one instance per group.
	Key
)

// String returns the DSL keyword for the mode.
func (m Mode) String() string {
	switch m {
	case All:
		return "all"
	case Each:
		return "each"
	case Key:
		return "key"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Arg binds one input set of an invoked function to a composition-local
// value.
type Arg struct {
	// Param is the function's declared input set name.
	Param string
	// Value is the composition-local dataflow value feeding it.
	Value string
	// Mode is the distribution keyword on the edge.
	Mode Mode
	// Optional marks an input set that may be empty without suppressing
	// execution (§4.4). Non-optional sets must contain at least one item
	// for the function to run.
	Optional bool
}

// Ret binds one output set of an invoked function to a new local value.
type Ret struct {
	// Value is the new composition-local value name.
	Value string
	// Set is the function's declared output set name.
	Set string
}

// Stmt is one invocation in a composition body.
type Stmt struct {
	// Func names the invoked vertex: a registered compute function, a
	// platform communication function (e.g. "HTTP"), or another
	// composition.
	Func string
	Args []Arg
	Rets []Ret
}

// OutputBinding exposes a local value as a composition output set.
type OutputBinding struct {
	// Value is the local value to expose.
	Value string
	// Name is the externally visible output set name.
	Name string
}

// Composition is a complete Dandelion program: G = (V, E) with explicit
// input and output sets.
type Composition struct {
	Name    string
	Inputs  []string
	Outputs []OutputBinding
	Stmts   []Stmt
}

// Validation errors.
var (
	ErrEmptyName      = errors.New("graph: empty name")
	ErrDuplicateValue = errors.New("graph: value defined more than once")
	ErrUndefinedValue = errors.New("graph: use of undefined value")
	ErrCycle          = errors.New("graph: composition contains a cycle")
	ErrNoStatements   = errors.New("graph: composition has no statements")
)

// Validate checks structural well-formedness: unique value definitions,
// all uses defined, and acyclicity. It returns nil for a valid DAG.
func (c *Composition) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("%w: composition", ErrEmptyName)
	}
	if len(c.Stmts) == 0 {
		return ErrNoStatements
	}
	defined := map[string]int{} // value -> defining stmt index (-1 = composition input)
	for _, in := range c.Inputs {
		if in == "" {
			return fmt.Errorf("%w: composition input", ErrEmptyName)
		}
		if _, dup := defined[in]; dup {
			return fmt.Errorf("%w: input %q", ErrDuplicateValue, in)
		}
		defined[in] = -1
	}
	for i, s := range c.Stmts {
		if s.Func == "" {
			return fmt.Errorf("%w: statement %d function", ErrEmptyName, i)
		}
		seenParams := map[string]bool{}
		for _, a := range s.Args {
			if a.Param == "" || a.Value == "" {
				return fmt.Errorf("%w: statement %d argument", ErrEmptyName, i)
			}
			if seenParams[a.Param] {
				return fmt.Errorf("graph: statement %d: parameter %q bound twice", i, a.Param)
			}
			seenParams[a.Param] = true
		}
		for _, r := range s.Rets {
			if r.Value == "" || r.Set == "" {
				return fmt.Errorf("%w: statement %d return", ErrEmptyName, i)
			}
			if _, dup := defined[r.Value]; dup {
				return fmt.Errorf("%w: %q (statement %d)", ErrDuplicateValue, r.Value, i)
			}
			defined[r.Value] = i
		}
	}
	for i, s := range c.Stmts {
		for _, a := range s.Args {
			if _, ok := defined[a.Value]; !ok {
				return fmt.Errorf("%w: %q (statement %d)", ErrUndefinedValue, a.Value, i)
			}
		}
	}
	for _, o := range c.Outputs {
		if o.Value == "" || o.Name == "" {
			return fmt.Errorf("%w: output binding", ErrEmptyName)
		}
		if _, ok := defined[o.Value]; !ok {
			return fmt.Errorf("%w: output %q", ErrUndefinedValue, o.Value)
		}
	}
	if _, err := c.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// Deps reports, for each statement, the indices of statements whose
// outputs it consumes (composition inputs excluded).
func (c *Composition) Deps() [][]int {
	def := map[string]int{}
	for i, s := range c.Stmts {
		for _, r := range s.Rets {
			def[r.Value] = i
		}
	}
	deps := make([][]int, len(c.Stmts))
	for i, s := range c.Stmts {
		seen := map[int]bool{}
		for _, a := range s.Args {
			if j, ok := def[a.Value]; ok && j != i && !seen[j] {
				seen[j] = true
				deps[i] = append(deps[i], j)
			}
		}
	}
	return deps
}

// TopoOrder returns statement indices in a dependency-respecting order,
// or ErrCycle if the value graph is cyclic. Ordering is deterministic:
// among ready statements, the lowest index runs first.
func (c *Composition) TopoOrder() ([]int, error) {
	deps := c.Deps()
	n := len(c.Stmts)
	indeg := make([]int, n)
	succ := make([][]int, n)
	for i, ds := range deps {
		indeg[i] = len(ds)
		for _, d := range ds {
			succ[d] = append(succ[d], i)
		}
	}
	var order []int
	ready := []int{}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	for len(ready) > 0 {
		// Take the smallest index for determinism.
		minI := 0
		for k := 1; k < len(ready); k++ {
			if ready[k] < ready[minI] {
				minI = k
			}
		}
		v := ready[minI]
		ready = append(ready[:minI], ready[minI+1:]...)
		order = append(order, v)
		for _, s := range succ[v] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// Consumers reports, for each value name, the list of statement indices
// that consume it. Used by the dispatcher to free contexts once every
// data-dependent function has consumed its output (§5).
func (c *Composition) Consumers() map[string][]int {
	out := map[string][]int{}
	for i, s := range c.Stmts {
		for _, a := range s.Args {
			out[a.Value] = append(out[a.Value], i)
		}
	}
	return out
}

// FuncNames returns the distinct vertex names referenced by the
// composition, in first-use order.
func (c *Composition) FuncNames() []string {
	seen := map[string]bool{}
	var names []string
	for _, s := range c.Stmts {
		if !seen[s.Func] {
			seen[s.Func] = true
			names = append(names, s.Func)
		}
	}
	return names
}
