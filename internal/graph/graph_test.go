package graph

import (
	"errors"
	"math/rand"
	"testing"
)

// renderLogs builds the paper's Listing 2 composition.
func renderLogs() *Composition {
	return &Composition{
		Name:   "RenderLogs",
		Inputs: []string{"AccessToken"},
		Outputs: []OutputBinding{
			{Value: "HTMLOutput", Name: "HTMLOutput"},
		},
		Stmts: []Stmt{
			{Func: "Access",
				Args: []Arg{{Param: "AccessToken", Value: "AccessToken", Mode: All}},
				Rets: []Ret{{Value: "AuthRequest", Set: "HTTPRequest"}}},
			{Func: "HTTP",
				Args: []Arg{{Param: "Request", Value: "AuthRequest", Mode: Each}},
				Rets: []Ret{{Value: "AuthResponse", Set: "Response"}}},
			{Func: "FanOut",
				Args: []Arg{{Param: "HTTPResponse", Value: "AuthResponse", Mode: All}},
				Rets: []Ret{{Value: "LogRequests", Set: "HTTPRequests"}}},
			{Func: "HTTP",
				Args: []Arg{{Param: "Request", Value: "LogRequests", Mode: Each}},
				Rets: []Ret{{Value: "LogResponses", Set: "Response"}}},
			{Func: "Render",
				Args: []Arg{{Param: "HTTPResponses", Value: "LogResponses", Mode: All}},
				Rets: []Ret{{Value: "HTMLOutput", Set: "HTMLOutput"}}},
		},
	}
}

func TestRenderLogsValid(t *testing.T) {
	c := renderLogs()
	if err := c.Validate(); err != nil {
		t.Fatalf("Listing 2 composition invalid: %v", err)
	}
	order, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 4}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("topo order = %v, want %v", order, want)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Composition)
		want error
	}{
		{"empty name", func(c *Composition) { c.Name = "" }, ErrEmptyName},
		{"no statements", func(c *Composition) { c.Stmts = nil }, ErrNoStatements},
		{"dup input", func(c *Composition) { c.Inputs = []string{"A", "A"} }, ErrDuplicateValue},
		{"empty input", func(c *Composition) { c.Inputs = []string{""} }, ErrEmptyName},
		{"dup value", func(c *Composition) {
			c.Stmts[1].Rets[0].Value = "AuthRequest"
		}, ErrDuplicateValue},
		{"undefined arg", func(c *Composition) {
			c.Stmts[0].Args[0].Value = "Ghost"
		}, ErrUndefinedValue},
		{"undefined output", func(c *Composition) {
			c.Outputs[0].Value = "Ghost"
		}, ErrUndefinedValue},
		{"empty func", func(c *Composition) { c.Stmts[0].Func = "" }, ErrEmptyName},
		{"empty ret", func(c *Composition) { c.Stmts[0].Rets[0].Set = "" }, ErrEmptyName},
		{"empty arg", func(c *Composition) { c.Stmts[0].Args[0].Param = "" }, ErrEmptyName},
		{"empty output name", func(c *Composition) { c.Outputs[0].Name = "" }, ErrEmptyName},
	}
	for _, tc := range cases {
		c := renderLogs()
		tc.mut(c)
		if err := c.Validate(); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestParamBoundTwice(t *testing.T) {
	c := renderLogs()
	c.Stmts[0].Args = append(c.Stmts[0].Args, Arg{Param: "AccessToken", Value: "AccessToken"})
	if err := c.Validate(); err == nil {
		t.Fatal("double-bound parameter accepted")
	}
}

func TestCycleDetection(t *testing.T) {
	c := &Composition{
		Name:   "Cyclic",
		Inputs: []string{"In"},
		Stmts: []Stmt{
			{Func: "A", Args: []Arg{{Param: "x", Value: "b"}}, Rets: []Ret{{Value: "a", Set: "o"}}},
			{Func: "B", Args: []Arg{{Param: "x", Value: "a"}}, Rets: []Ret{{Value: "b", Set: "o"}}},
		},
	}
	if err := c.Validate(); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
}

func TestSelfLoopIsCycle(t *testing.T) {
	c := &Composition{
		Name: "Self",
		Stmts: []Stmt{
			{Func: "A", Args: []Arg{{Param: "x", Value: "a"}}, Rets: []Ret{{Value: "a", Set: "o"}}},
		},
	}
	// Self-dependency: value a consumed and produced by statement 0.
	// Deps excludes self-edges, so this validates; the dispatcher treats
	// it as "runs once inputs exist", which never happens. Validate's
	// undefined-check still passes since a is defined. We assert the
	// current contract: no ErrCycle, and deps are empty.
	deps := c.Deps()
	if len(deps[0]) != 0 {
		t.Fatalf("self-edge should not create a dep: %v", deps)
	}
}

func TestDeps(t *testing.T) {
	c := renderLogs()
	deps := c.Deps()
	want := [][]int{nil, {0}, {1}, {2}, {3}}
	for i := range want {
		if len(deps[i]) != len(want[i]) {
			t.Fatalf("deps[%d] = %v, want %v", i, deps[i], want[i])
		}
		for j := range want[i] {
			if deps[i][j] != want[i][j] {
				t.Fatalf("deps[%d] = %v, want %v", i, deps[i], want[i])
			}
		}
	}
}

func TestDiamondTopo(t *testing.T) {
	c := &Composition{
		Name:   "Diamond",
		Inputs: []string{"In"},
		Stmts: []Stmt{
			{Func: "Src", Args: []Arg{{Param: "i", Value: "In"}}, Rets: []Ret{{Value: "s", Set: "o"}}},
			{Func: "L", Args: []Arg{{Param: "i", Value: "s"}}, Rets: []Ret{{Value: "l", Set: "o"}}},
			{Func: "R", Args: []Arg{{Param: "i", Value: "s"}}, Rets: []Ret{{Value: "r", Set: "o"}}},
			{Func: "Join", Args: []Arg{{Param: "a", Value: "l"}, {Param: "b", Value: "r"}},
				Rets: []Ret{{Value: "out", Set: "o"}}},
		},
		Outputs: []OutputBinding{{Value: "out", Name: "Result"}},
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	order, _ := c.TopoOrder()
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	if !(pos[0] < pos[1] && pos[0] < pos[2] && pos[1] < pos[3] && pos[2] < pos[3]) {
		t.Fatalf("diamond topo order invalid: %v", order)
	}
}

func TestConsumers(t *testing.T) {
	c := renderLogs()
	cons := c.Consumers()
	if got := cons["AuthRequest"]; len(got) != 1 || got[0] != 1 {
		t.Fatalf("consumers of AuthRequest = %v", got)
	}
	if got := cons["AccessToken"]; len(got) != 1 || got[0] != 0 {
		t.Fatalf("consumers of AccessToken = %v", got)
	}
}

func TestFuncNames(t *testing.T) {
	names := renderLogs().FuncNames()
	want := []string{"Access", "HTTP", "FanOut", "Render"}
	if len(names) != len(want) {
		t.Fatalf("FuncNames = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("FuncNames = %v, want %v", names, want)
		}
	}
}

func TestModeString(t *testing.T) {
	if All.String() != "all" || Each.String() != "each" || Key.String() != "key" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode should still print")
	}
}

// Property: random DAGs built by only referencing earlier values always
// validate and topo-sort.
func TestRandomDAGsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(12)
		c := &Composition{Name: "Rand", Inputs: []string{"v_in"}}
		avail := []string{"v_in"}
		for i := 0; i < n; i++ {
			st := Stmt{Func: "F"}
			nargs := 1 + rng.Intn(3)
			for a := 0; a < nargs && a < len(avail); a++ {
				v := avail[rng.Intn(len(avail))]
				dup := false
				for _, ex := range st.Args {
					if ex.Value == v {
						dup = true
					}
				}
				if dup {
					continue
				}
				st.Args = append(st.Args, Arg{
					Param: "p" + string(rune('a'+a)),
					Value: v,
					Mode:  Mode(rng.Intn(3)),
				})
			}
			val := "v" + string(rune('A'+i))
			st.Rets = []Ret{{Value: val, Set: "out"}}
			avail = append(avail, val)
			c.Stmts = append(c.Stmts, st)
		}
		c.Outputs = []OutputBinding{{Value: avail[len(avail)-1], Name: "Out"}}
		if err := c.Validate(); err != nil {
			t.Fatalf("trial %d: random DAG invalid: %v", trial, err)
		}
		order, err := c.TopoOrder()
		if err != nil || len(order) != n {
			t.Fatalf("trial %d: topo failed: %v %v", trial, order, err)
		}
	}
}
