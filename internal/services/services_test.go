package services

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"dandelion/internal/sqlmini"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

func TestObjectStoreCRUD(t *testing.T) {
	store := NewObjectStore()
	srv, err := StartObjectStore(store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// PUT via HTTP.
	req, _ := http.NewRequest(http.MethodPut, srv.URL()+"/bkt/key1", bytes.NewReader([]byte("v1")))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("put status = %d", resp.StatusCode)
	}

	code, body := get(t, srv.URL()+"/bkt/key1")
	if code != 200 || string(body) != "v1" {
		t.Fatalf("get = %d %q", code, body)
	}
	if store.BytesServed() != 2 {
		t.Fatalf("bytes served = %d", store.BytesServed())
	}

	// Direct API + list.
	store.Put("bkt", "key2", []byte("v2"))
	code, body = get(t, srv.URL()+"/bkt/")
	if code != 200 {
		t.Fatalf("list status = %d", code)
	}
	var keys []string
	json.Unmarshal(body, &keys)
	if len(keys) != 2 {
		t.Fatalf("keys = %v", keys)
	}

	code, _ = get(t, srv.URL()+"/bkt/missing")
	if code != 404 {
		t.Fatalf("missing = %d", code)
	}

	// Delete.
	req, _ = http.NewRequest(http.MethodDelete, srv.URL()+"/bkt/key1", nil)
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if _, ok := store.Get("bkt", "key1"); ok {
		t.Fatal("delete did not remove object")
	}

	// Bad puts.
	req, _ = http.NewRequest(http.MethodPut, srv.URL()+"/nokey", bytes.NewReader(nil))
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bucket-less put = %d", resp.StatusCode)
	}
}

func TestAuthService(t *testing.T) {
	auth := NewAuthService()
	auth.Grant("tok123", []string{"http://a/logs", "http://b/logs"})
	srv, err := StartAuthService(auth)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := post(t, srv.URL()+"/auth", "tok123")
	if code != 200 {
		t.Fatalf("auth = %d", code)
	}
	var eps []string
	json.Unmarshal(body, &eps)
	if len(eps) != 2 || eps[0] != "http://a/logs" {
		t.Fatalf("endpoints = %v", eps)
	}

	code, _ = post(t, srv.URL()+"/auth", "wrong")
	if code != http.StatusUnauthorized {
		t.Fatalf("bad token = %d", code)
	}

	// Query-parameter form.
	code, _ = get(t, srv.URL()+"/auth?token=tok123")
	if code != 200 {
		t.Fatalf("query token = %d", code)
	}
}

func TestLogShard(t *testing.T) {
	shard := &LogShard{Name: "s1", Lines: []string{"GET /a 200", "GET /b 500"}}
	srv, err := StartLogShard(shard)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, srv.URL()+"/logs")
	if code != 200 {
		t.Fatalf("logs = %d", code)
	}
	text := string(body)
	if !strings.Contains(text, "# shard s1") || !strings.Contains(text, "GET /b 500") {
		t.Fatalf("body = %q", text)
	}
}

func TestLLMService(t *testing.T) {
	llm := &LLMService{}
	srv, err := StartLLMService(llm)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	prompt := "Schema: sales(region TEXT, amount INT)\nQuestion: How many sales are there?"
	code, body := post(t, srv.URL()+"/v1/generate", prompt)
	if code != 200 {
		t.Fatalf("llm = %d", code)
	}
	var out map[string]string
	json.Unmarshal(body, &out)
	if !strings.Contains(out["completion"], "SELECT COUNT(*) FROM sales") {
		t.Fatalf("completion = %q", out["completion"])
	}
	if llm.Requests() != 1 {
		t.Fatalf("requests = %d", llm.Requests())
	}
}

func TestText2SQLShapes(t *testing.T) {
	cases := []struct {
		prompt string
		want   string
	}{
		{"Schema: sales(a INT)\nQuestion: how many rows?", "SELECT COUNT(*) FROM sales"},
		{"Schema: sales(a INT)\nQuestion: what is the average amount?", "SELECT AVG(amount) FROM sales"},
		{"Schema: sales(a INT)\nQuestion: total amount sold?", "SELECT SUM(amount) FROM sales"},
		{"Schema: sales(a INT)\nQuestion: count per region?", "SELECT region, COUNT(*) FROM sales GROUP BY region"},
		{"Schema: sales(a INT)\nQuestion: total amount per region?", "SELECT region, SUM(amount) FROM sales GROUP BY region"},
		{"Schema: sales(a INT)\nQuestion: show me stuff", "SELECT * FROM sales LIMIT 10"},
	}
	for _, c := range cases {
		if got := Text2SQL(c.prompt); got != c.want {
			t.Errorf("Text2SQL(%q) = %q, want %q", c.prompt, got, c.want)
		}
	}
}

func TestSQLService(t *testing.T) {
	db := sqlmini.NewDB()
	db.MustExec("CREATE TABLE sales (region TEXT, amount INT)")
	db.MustExec("INSERT INTO sales VALUES ('east', 10), ('west', 30)")
	srv, err := StartSQLService(&SQLService{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := post(t, srv.URL()+"/query", "SELECT region, amount FROM sales ORDER BY amount DESC")
	if code != 200 {
		t.Fatalf("query = %d: %s", code, body)
	}
	var out struct {
		Columns []string
		Rows    [][]string
	}
	json.Unmarshal(body, &out)
	if len(out.Rows) != 2 || out.Rows[0][0] != "west" || out.Rows[0][1] != "30" {
		t.Fatalf("rows = %v", out.Rows)
	}

	code, body = post(t, srv.URL()+"/query", "SELECT nothing FROM nowhere")
	if code != http.StatusBadRequest {
		t.Fatalf("bad query = %d %s", code, body)
	}
}
