// Package services provides the in-process cloud services that Dandelion
// applications talk to over HTTP in the paper's evaluation: an S3-style
// object store (SSB data ingest, §7.7), an authentication service and
// log-shard servers (the distributed log-processing app of Figure 3), a
// mock LLM inference endpoint and a SQL database service (the Text2SQL
// agentic workflow of §7.7).
//
// Every service is a real net/http server on a loopback ephemeral port,
// so the HTTP communication function exercises genuine sockets.
package services

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"dandelion/internal/sqlmini"
)

// Server wraps one HTTP service bound to a loopback ephemeral port.
type Server struct {
	ln  net.Listener
	srv *http.Server
	url string
}

func serve(handler http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("services: listen: %w", err)
	}
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: handler},
		url: "http://" + ln.Addr().String(),
	}
	go s.srv.Serve(ln) //nolint:errcheck // closed on shutdown
	return s, nil
}

// URL is the service base URL (http://127.0.0.1:port).
func (s *Server) URL() string { return s.url }

// Close shuts the service down.
func (s *Server) Close() error { return s.srv.Close() }

// ---------------------------------------------------------------------
// Object store (S3 stand-in)

// ObjectStore is a minimal S3-style blob service: PUT /bucket/key stores
// the body, GET /bucket/key retrieves it, GET /bucket/ lists keys.
type ObjectStore struct {
	mu      sync.RWMutex
	objects map[string][]byte // "bucket/key" -> data
	// GetCount counts GET hits, for cost accounting à la Athena's
	// bytes-scanned billing.
	getBytes int64
}

// NewObjectStore creates an empty store.
func NewObjectStore() *ObjectStore {
	return &ObjectStore{objects: map[string][]byte{}}
}

// Put stores an object directly (bootstrap path).
func (o *ObjectStore) Put(bucket, key string, data []byte) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.objects[bucket+"/"+key] = append([]byte(nil), data...)
}

// Get retrieves an object directly.
func (o *ObjectStore) Get(bucket, key string) ([]byte, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	d, ok := o.objects[bucket+"/"+key]
	return d, ok
}

// BytesServed reports cumulative bytes served over GET.
func (o *ObjectStore) BytesServed() int64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.getBytes
}

// ServeHTTP implements the REST surface.
func (o *ObjectStore) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/")
	switch r.Method {
	case http.MethodPut, http.MethodPost:
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, "read error", http.StatusBadRequest)
			return
		}
		if !strings.Contains(path, "/") {
			http.Error(w, "want /bucket/key", http.StatusBadRequest)
			return
		}
		o.mu.Lock()
		o.objects[path] = body
		o.mu.Unlock()
		w.WriteHeader(http.StatusCreated)
	case http.MethodGet:
		if strings.HasSuffix(path, "/") || !strings.Contains(path, "/") {
			// List keys under the bucket prefix.
			prefix := strings.TrimSuffix(path, "/") + "/"
			o.mu.RLock()
			var keys []string
			for k := range o.objects {
				if strings.HasPrefix(k, prefix) {
					keys = append(keys, strings.TrimPrefix(k, prefix))
				}
			}
			o.mu.RUnlock()
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(keys)
			return
		}
		o.mu.Lock()
		d, ok := o.objects[path]
		if ok {
			o.getBytes += int64(len(d))
		}
		o.mu.Unlock()
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(d)
	case http.MethodDelete:
		o.mu.Lock()
		delete(o.objects, path)
		o.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// StartObjectStore serves the store on a loopback port.
func StartObjectStore(o *ObjectStore) (*Server, error) { return serve(o) }

// ---------------------------------------------------------------------
// Auth service + log shards (Figure 3 application)

// AuthService validates access tokens and returns the log-shard
// endpoints the token is authorized for, as a JSON array of URLs.
type AuthService struct {
	mu     sync.RWMutex
	tokens map[string][]string // token -> endpoints
}

// NewAuthService creates an auth service with no registered tokens.
func NewAuthService() *AuthService {
	return &AuthService{tokens: map[string][]string{}}
}

// Grant authorizes token for the given endpoints.
func (a *AuthService) Grant(token string, endpoints []string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.tokens[token] = append([]string(nil), endpoints...)
}

// ServeHTTP handles POST /auth with the token as the request body.
func (a *AuthService) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, _ := io.ReadAll(r.Body)
	token := strings.TrimSpace(string(body))
	if token == "" {
		token = strings.TrimSpace(r.URL.Query().Get("token"))
	}
	a.mu.RLock()
	eps, ok := a.tokens[token]
	a.mu.RUnlock()
	if !ok {
		http.Error(w, "invalid token", http.StatusUnauthorized)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(eps)
}

// StartAuthService serves the auth service on a loopback port.
func StartAuthService(a *AuthService) (*Server, error) { return serve(a) }

// LogShard serves a slice of log lines at GET /logs.
type LogShard struct {
	Name  string
	Lines []string
}

// ServeHTTP returns the shard's log lines, one per line.
func (l *LogShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintf(w, "# shard %s\n", l.Name)
	for _, ln := range l.Lines {
		fmt.Fprintln(w, ln)
	}
}

// StartLogShard serves one shard on a loopback port.
func StartLogShard(l *LogShard) (*Server, error) { return serve(l) }

// ---------------------------------------------------------------------
// Mock LLM inference service (Text2SQL)

// LLMService emulates a Text2SQL model served over REST: POST /v1/generate
// with a prompt containing "Schema: ..." and "Question: ..." lines
// returns a SQL query. The "model" is a rule-based translator — the
// point is exercising the workflow's communication path, not language
// understanding.
type LLMService struct {
	// InferenceDelay is added before responding, standing in for model
	// forward passes (the paper's Gemma-3-4b-it on an H100 takes
	// ~1.2 s; keep this small in tests).
	InferenceDelay time.Duration

	mu       sync.Mutex
	requests int
}

// Requests reports how many generations were served.
func (l *LLMService) Requests() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.requests
}

// ServeHTTP handles generation requests.
func (l *LLMService) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, _ := io.ReadAll(r.Body)
	l.mu.Lock()
	l.requests++
	l.mu.Unlock()
	if l.InferenceDelay > 0 {
		time.Sleep(l.InferenceDelay)
	}
	sql := Text2SQL(string(body))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"completion": "```sql\n" + sql + "\n```"})
}

// Text2SQL is the rule-based prompt→SQL translation shared by the mock
// service and tests. It understands a small family of analytic question
// shapes over a single table.
func Text2SQL(prompt string) string {
	table := "t"
	for _, line := range strings.Split(prompt, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "Schema:") {
			schema := strings.TrimSpace(strings.TrimPrefix(line, "Schema:"))
			if i := strings.Index(schema, "("); i > 0 {
				table = strings.TrimSpace(schema[:i])
			}
		}
	}
	q := strings.ToLower(prompt)
	grouped := strings.Contains(q, "per ") || strings.Contains(q, "by ")
	switch {
	case grouped && (strings.Contains(q, "total") || strings.Contains(q, "sum")):
		col := guessGroup(q)
		return "SELECT " + col + ", SUM(" + guessColumn(q) + ") FROM " + table + " GROUP BY " + col
	case grouped:
		col := guessGroup(q)
		return "SELECT " + col + ", COUNT(*) FROM " + table + " GROUP BY " + col
	case strings.Contains(q, "how many"):
		return "SELECT COUNT(*) FROM " + table
	case strings.Contains(q, "average"):
		return "SELECT AVG(" + guessColumn(q) + ") FROM " + table
	case strings.Contains(q, "total") || strings.Contains(q, "sum"):
		return "SELECT SUM(" + guessColumn(q) + ") FROM " + table
	default:
		return "SELECT * FROM " + table + " LIMIT 10"
	}
}

func guessColumn(q string) string {
	for _, c := range []string{"amount", "price", "revenue", "quantity", "value"} {
		if strings.Contains(q, c) {
			return c
		}
	}
	return "amount"
}

func guessGroup(q string) string {
	for _, c := range []string{"region", "category", "city", "year"} {
		if strings.Contains(q, c) {
			return c
		}
	}
	return "region"
}

// StartLLMService serves the LLM stub on a loopback port.
func StartLLMService(l *LLMService) (*Server, error) { return serve(l) }

// ---------------------------------------------------------------------
// SQL database service

// SQLService exposes a sqlmini database over HTTP: POST /query with the
// SQL statement as the body returns a JSON object {columns, rows}.
type SQLService struct {
	DB *sqlmini.DB
}

// ServeHTTP executes the posted statement.
func (s *SQLService) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, _ := io.ReadAll(r.Body)
	res, err := s.DB.Exec(string(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	out := struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}{Columns: res.Columns}
	for _, row := range res.Rows {
		var cells []string
		for _, v := range row {
			cells = append(cells, v.String())
		}
		out.Rows = append(out.Rows, cells)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// StartSQLService serves the database on a loopback port.
func StartSQLService(s *SQLService) (*Server, error) { return serve(s) }
