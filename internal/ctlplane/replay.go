// Journal replay: the bridge between the durable invocation journal
// and the runtime-reconfiguration surface. Every /admin change a node
// accepts is appended to its journal as a KindReconfig record; on
// restart the platform replays those records through ApplyRecord, so a
// reconfiguration entered over HTTP survives a crash exactly like one
// entered at boot. Replay applies records in journal order — last
// writer wins, the same semantics live callers get.
package ctlplane

import "dandelion/internal/journal"

// ApplyRecord applies one journaled admin reconfiguration to a
// Reconfigurer and reports whether the record was a reconfiguration it
// understood. Unknown ops are skipped (forward compatibility: a journal
// written by a newer node replays what this node understands).
func ApplyRecord(r Reconfigurer, rec journal.Record) bool {
	if rec.Kind != journal.KindReconfig {
		return false
	}
	switch rec.Op {
	case journal.OpTenantWeight:
		r.SetTenantWeight(rec.Tenant, int(rec.A))
	case journal.OpEngineCounts:
		r.SetEngineCounts(int(rec.A), int(rec.B))
	case journal.OpAdmissionClamp:
		r.SetAdmissionClamp(int(rec.A), int(rec.B))
	case journal.OpAutoscale:
		r.SetAutoscale(rec.A != 0)
	case journal.OpDrain:
		if rec.A != 0 {
			r.Drain()
		} else {
			r.Resume()
		}
	default:
		return false
	}
	return true
}
