package ctlplane

import (
	"sync"
	"testing"
	"time"
)

// fakePool is a deterministic Pool for driving the controller by hand.
type fakePool struct {
	mu sync.Mutex
	n  int
}

func (p *fakePool) Count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

func (p *fakePool) SetCount(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.n = n
}

func TestElasticityGrowsUnderBacklogWithHysteresis(t *testing.T) {
	pool := &fakePool{n: 1}
	sig := Signals{QueueLen: 100}
	e := NewElasticity(Config{Min: 1, Max: 3, GrowHoldSteps: 2},
		pool, func() Signals { return sig })

	// One hot step is not enough: hysteresis demands GrowHoldSteps.
	e.StepOnce()
	if pool.Count() != 1 {
		t.Fatalf("grew after one hot step: count=%d", pool.Count())
	}
	e.StepOnce()
	if pool.Count() != 2 {
		t.Fatalf("count after 2 hot steps = %d, want 2", pool.Count())
	}
	// Sustained pressure keeps growing, but never past Max.
	for i := 0; i < 10; i++ {
		e.StepOnce()
	}
	if pool.Count() != 3 {
		t.Fatalf("count under sustained pressure = %d, want Max=3", pool.Count())
	}
	if e.Grows() != 2 || e.Resizes() != 2 {
		t.Fatalf("grows=%d resizes=%d, want 2/2", e.Grows(), e.Resizes())
	}
}

func TestElasticityGrowsOnDispatchWaitP99(t *testing.T) {
	pool := &fakePool{n: 1}
	sig := Signals{WaitP99: 50 * time.Millisecond} // empty queue, slow dispatch
	e := NewElasticity(Config{Min: 1, Max: 2, GrowHoldSteps: 1, GrowWaitP99: 10 * time.Millisecond},
		pool, func() Signals { return sig })
	e.StepOnce()
	if pool.Count() != 2 {
		t.Fatalf("count = %d, want 2 (p99 pressure)", pool.Count())
	}
}

func TestElasticityShrinksWhenCalm(t *testing.T) {
	pool := &fakePool{n: 3}
	sig := Signals{QueueLen: 0, InFlight: 0}
	e := NewElasticity(Config{Min: 1, Max: 3, ShrinkHoldSteps: 3},
		pool, func() Signals { return sig })

	for i := 0; i < 2; i++ {
		e.StepOnce()
	}
	if pool.Count() != 3 {
		t.Fatalf("shrank before hold steps: count=%d", pool.Count())
	}
	e.StepOnce() // third consecutive calm step
	if pool.Count() != 2 {
		t.Fatalf("count after hold = %d, want 2", pool.Count())
	}
	// Keep calm long enough and it bottoms out at Min, never below.
	for i := 0; i < 20; i++ {
		e.StepOnce()
	}
	if pool.Count() != 1 {
		t.Fatalf("count = %d, want Min=1", pool.Count())
	}
	if e.Shrinks() != 2 {
		t.Fatalf("shrinks = %d, want 2", e.Shrinks())
	}
}

func TestElasticityMixedSignalsResetStreaks(t *testing.T) {
	pool := &fakePool{n: 2}
	sigs := []Signals{
		{QueueLen: 0, InFlight: 0}, // calm
		{QueueLen: 0, InFlight: 0}, // calm
		{QueueLen: 1, InFlight: 2}, // neither hot nor calm: resets
		{QueueLen: 0, InFlight: 0}, // calm again, streak restarts
		{QueueLen: 0, InFlight: 0},
	}
	i := 0
	e := NewElasticity(Config{Min: 1, Max: 4, ShrinkHoldSteps: 3},
		pool, func() Signals { s := sigs[i]; i++; return s })
	for range sigs {
		e.StepOnce()
	}
	if pool.Count() != 2 {
		t.Fatalf("count = %d, want 2 (streak was reset)", pool.Count())
	}
}

func TestElasticityDisabledHoldsStill(t *testing.T) {
	pool := &fakePool{n: 1}
	e := NewElasticity(Config{Min: 1, Max: 8, GrowHoldSteps: 1},
		pool, func() Signals { return Signals{QueueLen: 1000} })
	e.SetEnabled(false)
	for i := 0; i < 5; i++ {
		e.StepOnce()
	}
	if pool.Count() != 1 || e.Resizes() != 0 {
		t.Fatalf("disabled controller acted: count=%d resizes=%d", pool.Count(), e.Resizes())
	}
	e.SetEnabled(true)
	e.StepOnce()
	if pool.Count() != 2 {
		t.Fatalf("re-enabled controller idle: count=%d", pool.Count())
	}
}

// TestElasticityBelowMinComposesWithOtherActuators: a pool another
// actuator (e.g. the PI core balancer) pushed below Min is NOT forced
// back while idle — an unconditional restore would re-add the moved
// core every step, inflating the total budget without bound — but any
// pressure grows it immediately, skipping the grow hysteresis.
func TestElasticityBelowMinComposesWithOtherActuators(t *testing.T) {
	pool := &fakePool{n: 1} // balancer took a core: below Min=2
	sig := Signals{}
	e := NewElasticity(Config{Min: 2, Max: 4, GrowHoldSteps: 3},
		pool, func() Signals { return sig })

	// Idle: no forced restore, no spurious resizes, no shrinking either.
	for i := 0; i < 5; i++ {
		e.StepOnce()
	}
	if pool.Count() != 1 || e.Resizes() != 0 {
		t.Fatalf("idle below Min: count=%d resizes=%d, want 1/0", pool.Count(), e.Resizes())
	}
	// Pressure: grows on the first hot step despite GrowHoldSteps=3.
	sig = Signals{QueueLen: 100}
	e.StepOnce()
	if pool.Count() != 2 {
		t.Fatalf("hot below Min: count=%d, want 2 (immediate grow)", pool.Count())
	}
}

func TestElasticityStartStop(t *testing.T) {
	pool := &fakePool{n: 1}
	e := NewElasticity(Config{Min: 1, Max: 4, GrowHoldSteps: 1, Period: time.Millisecond},
		pool, func() Signals { return Signals{QueueLen: 100} })
	e.Start()
	e.Start() // idempotent
	deadline := time.After(2 * time.Second)
	for pool.Count() < 4 {
		select {
		case <-deadline:
			t.Fatalf("pool never reached Max under load: count=%d", pool.Count())
		case <-time.After(time.Millisecond):
		}
	}
	e.Stop()
	e.Stop() // idempotent
	if e.Resizes() < 3 {
		t.Fatalf("resizes = %d, want >= 3", e.Resizes())
	}
}

// TestConfigBoundsNormalization: an explicit Max below Min pins the
// pool at Min (a fixed-size pool) — it is never silently widened to
// 4×Min, which would blow past the operator's ceiling.
func TestConfigBoundsNormalization(t *testing.T) {
	cases := []struct {
		in       Config
		min, max int
	}{
		{Config{}, 1, 4},
		{Config{Min: 8}, 8, 32},          // unset Max: 4×Min
		{Config{Min: 8, Max: 4}, 8, 8},   // inverted: fixed at Min
		{Config{Min: 2, Max: 16}, 2, 16}, // sane pair untouched
		{Config{Min: -3, Max: -1}, 1, 4}, // garbage: defaults
	}
	for _, c := range cases {
		e := NewElasticity(c.in, &fakePool{n: c.in.Min}, func() Signals { return Signals{} })
		if min, max := e.Bounds(); min != c.min || max != c.max {
			t.Errorf("Config %+v → bounds [%d, %d], want [%d, %d]", c.in, min, max, c.min, c.max)
		}
	}
}
