// Package ctlplane is the dynamic control plane of a Dandelion worker:
// the layer that turns boot-time configuration into runtime
// reconfiguration. It owns two things.
//
// First, the Reconfigurer interface — the contract every layer above
// the dispatcher programs against when it wants to change a running
// node: per-tenant DRR weights (applied through internal/sched),
// engine-pool sizes (applied through engine.Pool.SetCount), batch
// admission-window clamps (applied through internal/autoscale), the
// elasticity controller's on/off switch, and drain/resume. core.Platform
// implements it; the frontend's authenticated /admin routes and the
// cluster manager's fan-out both speak it, so a weight update entered
// over HTTP reaches the same code path an SDK caller uses.
//
// Second, the Elasticity controller — the goroutine that makes engine
// pools elastic. Every control period it samples two load signals (queue
// backlog and the scheduling plane's dispatch-wait p99) and grows or
// shrinks the pool one engine at a time within [Min, Max] bounds.
// Hysteresis on both edges (GrowHoldSteps consecutive hot observations
// before a grow, ShrinkHoldSteps consecutive calm observations before a
// shrink) keeps it from oscillating on bursty load. This complements the
// PI core balancer in internal/controlplane: the balancer moves a fixed
// core budget between the compute and communication pools, while the
// elasticity controller changes the budget itself.
package ctlplane

import (
	"sync"
	"sync/atomic"
	"time"
)

// Reconfigurer is the runtime-reconfiguration surface of one worker
// node. All methods are safe for concurrent use and take effect without
// a restart; setters apply from the next scheduling/admission decision.
type Reconfigurer interface {
	// SetTenantWeight sets a tenant's DRR dispatch weight on every
	// scheduling plane of the node (non-positive weights are clamped to
	// 1 by the scheduler); TenantWeight reads it back (1 for tenants the
	// node has never seen).
	SetTenantWeight(tenant string, weight int)
	TenantWeight(tenant string) int
	// TenantShare reports the tenant's current weighted dispatch share
	// in (0, 1] among the compute plane's active tenants.
	TenantShare(tenant string) float64
	// SetEngineCounts resizes the compute and communication engine
	// pools (values < 1 are clamped to 1); EngineCounts reads the
	// current sizes.
	SetEngineCounts(compute, comm int)
	EngineCounts() (compute, comm int)
	// SetAutoscale toggles the elasticity controller at runtime; it is a
	// no-op on nodes booted without one. AutoscaleOn reports the switch.
	SetAutoscale(on bool)
	AutoscaleOn() bool
	// SetAdmissionClamp overrides the batch admission-window clamp
	// [min, max] applied to every tenant's window; AdmissionClamp reads
	// the current clamp.
	SetAdmissionClamp(min, max int)
	AdmissionClamp() (min, max int)
	// Drain makes the node reject new invocations (in-flight work
	// completes); Resume re-admits; Draining reports the state.
	Drain()
	Resume()
	Draining() bool
}

// Pool is the slice of engine.Pool the elasticity controller actuates.
type Pool interface {
	Count() int
	SetCount(n int)
}

// Signals is one observation of the load the controller scales on.
type Signals struct {
	// QueueLen is the backlog feeding the pool: tasks parked in the
	// scheduling plane plus tasks in the engine queue.
	QueueLen int
	// InFlight is the number of tasks currently executing on engines.
	InFlight int
	// WaitP99 is the scheduling plane's worst per-tenant dispatch-wait
	// p99 — the fairness-facing latency signal.
	WaitP99 time.Duration
}

// Config parameterizes an Elasticity controller. The zero value selects
// the documented defaults.
type Config struct {
	// Min and Max bound the pool size. Min defaults to 1; Max unset
	// (≤ 0) defaults to 4×Min, and an explicit Max below Min is raised
	// to Min (a fixed-size pool), never silently widened.
	Min, Max int
	// GrowBacklogPerEngine is the queue backlog per engine that reads as
	// pressure (default 4).
	GrowBacklogPerEngine int
	// GrowWaitP99 is the dispatch-wait p99 that reads as pressure
	// (default 5ms).
	GrowWaitP99 time.Duration
	// GrowHoldSteps is the number of consecutive hot observations before
	// a grow (default 2); ShrinkHoldSteps the consecutive calm
	// observations before a shrink (default 10). Shrinking deliberately
	// needs a longer run of evidence than growing, mirroring the
	// conservative scale-down of internal/autoscale.
	GrowHoldSteps   int
	ShrinkHoldSteps int
	// Period is the control interval (default 30ms, the paper's worker
	// control-loop period).
	Period time.Duration
}

func (c Config) withDefaults() Config {
	if c.Min < 1 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 4 * c.Min
	} else if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.GrowBacklogPerEngine < 1 {
		c.GrowBacklogPerEngine = 4
	}
	if c.GrowWaitP99 <= 0 {
		c.GrowWaitP99 = 5 * time.Millisecond
	}
	if c.GrowHoldSteps < 1 {
		c.GrowHoldSteps = 2
	}
	if c.ShrinkHoldSteps < 1 {
		c.ShrinkHoldSteps = 10
	}
	if c.Period <= 0 {
		c.Period = 30 * time.Millisecond
	}
	return c
}

// Elasticity grows and shrinks one engine pool from load signals. It is
// safe for concurrent use; StepOnce is exposed so tests (and callers
// with their own timers) can drive it deterministically.
type Elasticity struct {
	cfg     Config
	pool    Pool
	signals func() Signals

	enabled atomic.Bool
	grows   atomic.Uint64
	shrinks atomic.Uint64

	mu         sync.Mutex
	hotSteps   int
	calmSteps  int
	stop, done chan struct{}
}

// NewElasticity wires a controller to a pool and a signal source. The
// controller starts enabled; Start launches the periodic loop.
func NewElasticity(cfg Config, pool Pool, signals func() Signals) *Elasticity {
	e := &Elasticity{cfg: cfg.withDefaults(), pool: pool, signals: signals}
	e.enabled.Store(true)
	return e
}

// SetEnabled toggles the controller without stopping its loop: disabled
// steps observe nothing and never resize.
func (e *Elasticity) SetEnabled(on bool) { e.enabled.Store(on) }

// Enabled reports the controller switch.
func (e *Elasticity) Enabled() bool { return e.enabled.Load() }

// Resizes reports the cumulative number of pool resizes (grows plus
// shrinks) the controller has applied — the EngineResizes stats gauge.
func (e *Elasticity) Resizes() uint64 { return e.grows.Load() + e.shrinks.Load() }

// Grows and Shrinks split Resizes by direction.
func (e *Elasticity) Grows() uint64   { return e.grows.Load() }
func (e *Elasticity) Shrinks() uint64 { return e.shrinks.Load() }

// Bounds reports the configured [Min, Max] pool-size bounds.
func (e *Elasticity) Bounds() (min, max int) { return e.cfg.Min, e.cfg.Max }

// StepOnce performs one observe/decide/actuate cycle.
//
// Hot (backlog ≥ GrowBacklogPerEngine×count, or dispatch-wait p99 ≥
// GrowWaitP99) for GrowHoldSteps consecutive steps grows the pool by
// one engine, up to Max. Calm (empty backlog and an idle engine) for
// ShrinkHoldSteps consecutive steps shrinks by one, down to Min. Any
// observation that is neither resets both streaks — the hysteresis that
// keeps a pool from thrashing between sizes under oscillating load.
//
// A pool found below Min is NOT forced back up outside the load
// signals: another actuator may legitimately hold it there (the PI core
// balancer moves a core compute→comm preserving the total budget, and
// an unconditional restore here would re-add that core every step,
// inflating the budget without bound). Below Min, shrinking stops and
// any hot observation grows immediately — Min is re-approached exactly
// as fast as load justifies it. Manual SetEngineCounts undershoot is
// prevented at apply time instead (core.Platform clamps into the
// controller's bounds while it is enabled).
func (e *Elasticity) StepOnce() {
	if !e.enabled.Load() {
		return
	}
	s := e.signals()
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.pool.Count()
	hot := s.QueueLen >= e.cfg.GrowBacklogPerEngine*max(n, 1) || s.WaitP99 >= e.cfg.GrowWaitP99
	calm := s.QueueLen == 0 && s.InFlight < n
	switch {
	case hot:
		e.calmSteps = 0
		e.hotSteps++
		hold := e.cfg.GrowHoldSteps
		if n < e.cfg.Min {
			hold = 1 // below the floor, any pressure grows immediately
		}
		if e.hotSteps >= hold && n < e.cfg.Max {
			e.pool.SetCount(n + 1)
			e.grows.Add(1)
			e.hotSteps = 0
		}
	case calm:
		e.hotSteps = 0
		e.calmSteps++
		if e.calmSteps >= e.cfg.ShrinkHoldSteps && n > e.cfg.Min {
			e.pool.SetCount(n - 1)
			e.shrinks.Add(1)
			e.calmSteps = 0
		}
	default:
		e.hotSteps, e.calmSteps = 0, 0
	}
}

// Start launches the periodic control loop; it is idempotent.
func (e *Elasticity) Start() {
	e.mu.Lock()
	if e.stop != nil {
		e.mu.Unlock()
		return
	}
	e.stop = make(chan struct{})
	e.done = make(chan struct{})
	stop, done := e.stop, e.done
	e.mu.Unlock()

	go func() {
		defer close(done)
		ticker := time.NewTicker(e.cfg.Period)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				e.StepOnce()
			}
		}
	}()
}

// Stop halts the control loop and waits for it to exit.
func (e *Elasticity) Stop() {
	e.mu.Lock()
	stop, done := e.stop, e.done
	e.stop, e.done = nil, nil
	e.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
