// Package workloads registers the paper's data-heavy evaluation
// applications as served compositions: the Star Schema Benchmark
// analytics queries (§7.7, internal/ssb), the QOI image-transcoding
// pipeline (§7.6, internal/qoiimg), and byte-heavy storage scans. The
// examples/ directory runs these same applications as self-contained
// programs against local mock services; this package instead puts them
// behind a worker node's serving plane — payloads arrive through the
// HTTP frontend and wire codec, flow through admission and DRR
// dispatch, and leave the same way — which is what the large-payload
// data-plane work is measured against.
//
// Suites are selected by name ("ssb", "image", "storage", or "all"),
// typically via cmd/dandelion's -workloads flag. Every composition
// registered here is described in docs/WORKLOADS.md (enforced by
// docs-check Rule 8). The MakeSSB*/Image*/Storage* helpers build the
// matching deterministic inputs so benchmarks, e2e tests, and remote
// clients agree on payload bytes without shipping a dataset.
package workloads

import (
	"fmt"
	"strings"
	"sync"

	"dandelion/internal/core"
	"dandelion/internal/memctx"
	"dandelion/internal/qoiimg"
	"dandelion/internal/ssb"
)

// Served workload composition names, one constant per composition a
// suite registers. docs-check Rule 8 requires every quoted name below
// to be documented in docs/WORKLOADS.md.
const (
	WorkloadSSBQuery      = "SSBQuery"
	WorkloadImagePipeline = "ImagePipeline"
	WorkloadStorageScan   = "StorageScan"
	WorkloadStorageFetch  = "StorageFetch"
)

// Registrar is the slice of the platform the suites need; both
// *core.Platform and the public *dandelion.Platform satisfy it.
type Registrar interface {
	RegisterFunction(core.ComputeFunc) error
	RegisterCompositionText(src string) ([]string, error)
}

// Suites lists the registrable suite names in registration order.
func Suites() []string { return []string{"ssb", "image", "storage"} }

// Register installs the requested workload suites on p. spec is a
// comma-separated subset of Suites(), or "all"; names are trimmed and
// deduplicated, so "ssb, ssb" registers once. It returns the suite
// names actually registered, in registration order.
func Register(p Registrar, spec string) ([]string, error) {
	want := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		switch name {
		case "":
		case "all":
			for _, s := range Suites() {
				want[s] = true
			}
		case "ssb", "image", "storage":
			want[name] = true
		default:
			return nil, fmt.Errorf("workloads: unknown suite %q (want one of %s, or all)",
				name, strings.Join(Suites(), "/"))
		}
	}
	var registered []string
	for _, s := range Suites() {
		if !want[s] {
			continue
		}
		var err error
		switch s {
		case "ssb":
			err = registerSSB(p)
		case "image":
			err = registerImage(p)
		case "storage":
			err = registerStorage(p)
		}
		if err != nil {
			return nil, fmt.Errorf("workloads: suite %s: %w", s, err)
		}
		registered = append(registered, s)
	}
	return registered, nil
}

// setNamed finds one of a function's input sets by parameter name.
func setNamed(in []memctx.Set, name string) (memctx.Set, error) {
	for _, s := range in {
		if s.Name == name {
			return s, nil
		}
	}
	return memctx.Set{}, fmt.Errorf("workloads: input set %q missing", name)
}

// --- SSB analytics suite -------------------------------------------------

// The SSB suite serves all four query flights over a deterministic
// database: dimension tables live on the worker (generated once per
// process from a fixed seed), while fact-table chunks ship through the
// serving plane as request payloads — the shared-nothing scan shape
// whose bytes-per-invocation dwarfs every microbench payload. Clients
// build matching chunks with MakeSSBChunks; any prefix of the fact
// table is valid input, so request size is tunable without touching
// the registered plans.
const (
	ssbSeed = 42
	// ssbRows bounds MakeSSBChunks: the full fact table is ~2.6 MiB
	// encoded (40 B/row), enough for several 1 MiB-class chunks.
	ssbRows = 1 << 16
)

var (
	ssbOnce sync.Once
	ssbDB   *ssb.DB
)

func ssbData() *ssb.DB {
	ssbOnce.Do(func() { ssbDB = ssb.Generate(ssbRows, ssbSeed) })
	return ssbDB
}

func registerSSB(p Registrar) error {
	plans := make(map[string]*ssb.Plan, len(ssb.Queries()))
	for _, q := range ssb.Queries() {
		plan, err := ssb.NewPlan(ssbData(), q)
		if err != nil {
			return err
		}
		plans[string(q)] = plan
	}
	err := p.RegisterFunction(core.ComputeFunc{Name: "SSBPartial", Go: func(in []memctx.Set) ([]memctx.Set, error) {
		qs, err := setNamed(in, "Q")
		if err != nil {
			return nil, err
		}
		if len(qs.Items) == 0 {
			return nil, fmt.Errorf("workloads: empty Query set")
		}
		plan := plans[strings.TrimSpace(string(qs.Items[0].Data))]
		if plan == nil {
			return nil, fmt.Errorf("workloads: unknown SSB query %q", qs.Items[0].Data)
		}
		chunks, err := setNamed(in, "Chunk")
		if err != nil {
			return nil, err
		}
		out := memctx.Set{Name: "Out"}
		for _, it := range chunks.Items {
			chunk, err := ssb.DecodeChunk(it.Data)
			if err != nil {
				return nil, err
			}
			out.Items = append(out.Items, memctx.Item{
				Name: it.Name, Data: plan.Partial(chunk).Encode(),
			})
		}
		return []memctx.Set{out}, nil
	}})
	if err != nil {
		return err
	}
	err = p.RegisterFunction(core.ComputeFunc{Name: "SSBMerge", Go: func(in []memctx.Set) ([]memctx.Set, error) {
		merged := ssb.NewGroupSum()
		for _, s := range in {
			for _, it := range s.Items {
				g, err := ssb.DecodeGroupSum(it.Data)
				if err != nil {
					return nil, err
				}
				merged.Merge(g)
			}
		}
		return []memctx.Set{{Name: "Out", Items: []memctx.Item{
			{Name: "result", Data: merged.Encode()},
		}}}, nil
	}})
	if err != nil {
		return err
	}
	_, err = p.RegisterCompositionText(`
composition SSBQuery(Query, Chunks) => Result {
    SSBPartial(Q = all Query, Chunk = each Chunks) => (partials = Out);
    SSBMerge(Partials = all partials) => (Result = Out);
}`)
	return err
}

// MakeSSBQuery renders the Query input item selecting one of
// ssb.Queries() (e.g. ssb.Q11).
func MakeSSBQuery(q ssb.QueryID) memctx.Item {
	return memctx.Item{Name: "query", Data: []byte(q)}
}

// MakeSSBChunks encodes the first rows fact rows (at most the
// deterministic table's full size) split into nChunks Chunks items.
func MakeSSBChunks(rows, nChunks int) ([]memctx.Item, error) {
	facts := ssbData().Facts
	if rows < 1 || rows > facts.Len() {
		return nil, fmt.Errorf("workloads: rows %d out of range [1, %d]", rows, facts.Len())
	}
	if nChunks < 1 || nChunks > rows {
		return nil, fmt.Errorf("workloads: nChunks %d out of range [1, %d]", nChunks, rows)
	}
	items := make([]memctx.Item, 0, nChunks)
	for c := 0; c < nChunks; c++ {
		lo, hi := c*rows/nChunks, (c+1)*rows/nChunks
		items = append(items, memctx.Item{
			Name: fmt.Sprintf("chunk%03d", c),
			Data: ssb.EncodeChunk(facts.Slice(lo, hi)),
		})
	}
	return items, nil
}

// SSBExpect computes the reference answer for MakeSSBChunks(rows, ·)
// under query q, independent of chunking (partial aggregation merges
// associatively).
func SSBExpect(q ssb.QueryID, rows int) (*ssb.GroupSum, error) {
	plan, err := ssb.NewPlan(ssbData(), q)
	if err != nil {
		return nil, err
	}
	return plan.Partial(ssbData().Facts.Slice(0, rows)), nil
}

// --- QOI image suite -----------------------------------------------------

// The image suite serves the §7.6 transcode step: QOI images arrive as
// request payload, one sandboxed instance per image converts QOI→PNG,
// and the PNGs return as response payload — symmetric megabyte-class
// traffic in both wire directions.
func registerImage(p Registrar) error {
	err := p.RegisterFunction(core.ComputeFunc{Name: "ImageTranscode", Go: func(in []memctx.Set) ([]memctx.Set, error) {
		images, err := setNamed(in, "Image")
		if err != nil {
			return nil, err
		}
		out := memctx.Set{Name: "Out"}
		for _, it := range images.Items {
			png, err := qoiimg.ToPNG(it.Data)
			if err != nil {
				return nil, fmt.Errorf("workloads: %s: %w", it.Name, err)
			}
			out.Items = append(out.Items, memctx.Item{Name: it.Name + ".png", Data: png})
		}
		return []memctx.Set{out}, nil
	}})
	if err != nil {
		return err
	}
	_, err = p.RegisterCompositionText(`
composition ImagePipeline(Images) => PNGs {
    ImageTranscode(Image = each Images) => (PNGs = Out);
}`)
	return err
}

// MakeImages renders n QOI-encoded deterministic test images of
// roughly w×h pixels (widths vary slightly per image so instances do
// unequal work, like a real batch).
func MakeImages(n, w, h int) []memctx.Item {
	items := make([]memctx.Item, 0, n)
	for i := 0; i < n; i++ {
		items = append(items, memctx.Item{
			Name: fmt.Sprintf("img%03d.qoi", i),
			Data: qoiimg.Encode(qoiimg.TestImage(w+8*(i%4), h)),
		})
	}
	return items
}

// --- Storage suite -------------------------------------------------------

// The storage suite serves the two halves of an object-scan workload
// split by wire direction: StorageScan ships large blobs in and
// returns a small digest (ingest-heavy — the request path's oversize
// reads and byte-aware admission carry the load), StorageFetch ships
// small size descriptors in and returns generated blobs (egress-heavy
// — the response path's vectored writes carry it).
func registerStorage(p Registrar) error {
	err := p.RegisterFunction(core.ComputeFunc{Name: "StoreScan", Go: func(in []memctx.Set) ([]memctx.Set, error) {
		blobs, err := setNamed(in, "Blob")
		if err != nil {
			return nil, err
		}
		out := memctx.Set{Name: "Out"}
		for _, it := range blobs.Items {
			var records, bytes int
			var hash uint64 = fnvOffset
			for _, b := range it.Data {
				hash = (hash ^ uint64(b)) * fnvPrime
				bytes++
				if b == '\n' {
					records++
				}
			}
			out.Items = append(out.Items, memctx.Item{
				Name: it.Name,
				Data: []byte(fmt.Sprintf("blobs=1 bytes=%d records=%d hash=%016x", bytes, records, hash)),
			})
		}
		return []memctx.Set{out}, nil
	}})
	if err != nil {
		return err
	}
	err = p.RegisterFunction(core.ComputeFunc{Name: "StoreSum", Go: func(in []memctx.Set) ([]memctx.Set, error) {
		var blobs, bytes, records int
		var hash uint64
		for _, s := range in {
			for _, it := range s.Items {
				var b, n, r int
				var h uint64
				if _, err := fmt.Sscanf(string(it.Data), "blobs=%d bytes=%d records=%d hash=%x", &b, &n, &r, &h); err != nil {
					return nil, fmt.Errorf("workloads: bad scan digest %q: %w", it.Data, err)
				}
				blobs += b
				bytes += n
				records += r
				hash ^= h // order-independent combine: blobs may arrive in any order
			}
		}
		return []memctx.Set{{Name: "Out", Items: []memctx.Item{{
			Name: "summary",
			Data: []byte(fmt.Sprintf("blobs=%d bytes=%d records=%d hash=%016x", blobs, bytes, records, hash)),
		}}}}, nil
	}})
	if err != nil {
		return err
	}
	err = p.RegisterFunction(core.ComputeFunc{Name: "StoreGen", Go: func(in []memctx.Set) ([]memctx.Set, error) {
		sizes, err := setNamed(in, "Size")
		if err != nil {
			return nil, err
		}
		out := memctx.Set{Name: "Out"}
		for _, it := range sizes.Items {
			var n int
			if _, err := fmt.Sscanf(string(it.Data), "%d", &n); err != nil || n < 0 {
				return nil, fmt.Errorf("workloads: bad blob size %q", it.Data)
			}
			out.Items = append(out.Items, memctx.Item{
				Name: it.Name,
				Data: MakeBlob(n, SeedFromName(it.Name)),
			})
		}
		return []memctx.Set{out}, nil
	}})
	if err != nil {
		return err
	}
	_, err = p.RegisterCompositionText(`
composition StorageScan(Blobs) => Result {
    StoreScan(Blob = each Blobs) => (digests = Out);
    StoreSum(Digests = all digests) => (Result = Out);
}
composition StorageFetch(Sizes) => Blobs {
    StoreGen(Size = each Sizes) => (Blobs = Out);
}`)
	return err
}

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// SeedFromName derives a blob-generator seed from an item name (FNV-1a),
// the convention StoreGen uses, so clients can reproduce fetched blobs.
func SeedFromName(name string) uint64 {
	var h uint64 = fnvOffset
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * fnvPrime
	}
	return h
}

// MakeBlob renders n deterministic pseudo-record bytes from seed:
// xorshift-filled lines of ~64 bytes, so StoreScan sees a plausible
// record structure and the payload stays incompressible-ish.
func MakeBlob(n int, seed uint64) []byte {
	if seed == 0 {
		seed = fnvOffset
	}
	b := make([]byte, n)
	x := seed
	for i := range b {
		if (i+1)%64 == 0 {
			b[i] = '\n'
			continue
		}
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		b[i] = ' ' + byte(x%94) // printable, never '\n'
	}
	return b
}

// MakeScanBlobs renders nBlobs Blobs items of blobSize bytes each for
// StorageScan, deterministic in the item name.
func MakeScanBlobs(nBlobs, blobSize int) []memctx.Item {
	items := make([]memctx.Item, 0, nBlobs)
	for i := 0; i < nBlobs; i++ {
		name := fmt.Sprintf("blob%03d", i)
		items = append(items, memctx.Item{Name: name, Data: MakeBlob(blobSize, SeedFromName(name))})
	}
	return items
}

// MakeFetchSizes renders nBlobs Sizes items each requesting a
// blobSize-byte generated blob from StorageFetch.
func MakeFetchSizes(nBlobs, blobSize int) []memctx.Item {
	items := make([]memctx.Item, 0, nBlobs)
	for i := 0; i < nBlobs; i++ {
		items = append(items, memctx.Item{
			Name: fmt.Sprintf("blob%03d", i),
			Data: []byte(fmt.Sprintf("%d", blobSize)),
		})
	}
	return items
}
