package workloads_test

import (
	"bytes"
	"fmt"
	"image/png"
	"strings"
	"testing"

	"dandelion"
	"dandelion/internal/ssb"
	"dandelion/internal/workloads"
)

func newPlatform(t *testing.T, suites string) *dandelion.Platform {
	t.Helper()
	p, err := dandelion.New(dandelion.Options{ComputeEngines: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Shutdown() })
	got, err := workloads.Register(p, suites)
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Split(suites, ",")
	if suites == "all" {
		want = workloads.Suites()
	}
	if len(got) != len(want) {
		t.Fatalf("registered suites = %v, want %v", got, want)
	}
	return p
}

func TestRegisterRejectsUnknownSuite(t *testing.T) {
	p, err := dandelion.New(dandelion.Options{ComputeEngines: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()
	if _, err := workloads.Register(p, "ssb,nope"); err == nil {
		t.Fatal("unknown suite accepted")
	}
}

func TestRegisterDeduplicates(t *testing.T) {
	p, err := dandelion.New(dandelion.Options{ComputeEngines: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()
	got, err := workloads.Register(p, "image, image")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "image" {
		t.Fatalf("registered = %v, want [image]", got)
	}
}

func TestSSBQueryServedMatchesReference(t *testing.T) {
	p := newPlatform(t, "ssb")
	const rows, chunks = 8192, 4
	in, err := workloads.MakeSSBChunks(rows, chunks)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ssb.Queries() {
		out, err := p.Invoke(workloads.WorkloadSSBQuery, map[string][]dandelion.Item{
			"Query":  {workloads.MakeSSBQuery(q)},
			"Chunks": in,
		})
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		got, err := ssb.DecodeGroupSum(out["Result"][0].Data)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want, err := workloads.SSBExpect(q, rows)
		if err != nil {
			t.Fatal(err)
		}
		gr, wr := got.Rows(), want.Rows()
		if len(gr) != len(wr) {
			t.Fatalf("%s: %d groups, want %d", q, len(gr), len(wr))
		}
		for i := range gr {
			if gr[i] != wr[i] {
				t.Fatalf("%s: group %d = %+v, want %+v", q, i, gr[i], wr[i])
			}
		}
	}
}

func TestSSBQueryRejectsUnknownQuery(t *testing.T) {
	p := newPlatform(t, "ssb")
	in, err := workloads.MakeSSBChunks(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Invoke(workloads.WorkloadSSBQuery, map[string][]dandelion.Item{
		"Query":  {{Name: "query", Data: []byte("Q9.9")}},
		"Chunks": in,
	})
	if err == nil {
		t.Fatal("unknown query accepted")
	}
}

func TestImagePipelineServed(t *testing.T) {
	p := newPlatform(t, "image")
	in := workloads.MakeImages(3, 96, 64)
	out, err := p.Invoke(workloads.WorkloadImagePipeline, map[string][]dandelion.Item{
		"Images": in,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(out["PNGs"]); got != 3 {
		t.Fatalf("PNGs = %d items, want 3", got)
	}
	for _, it := range out["PNGs"] {
		img, err := png.Decode(bytes.NewReader(it.Data))
		if err != nil {
			t.Fatalf("%s: not a PNG: %v", it.Name, err)
		}
		if img.Bounds().Dy() != 64 {
			t.Fatalf("%s: height %d, want 64", it.Name, img.Bounds().Dy())
		}
	}
}

func TestStorageScanServed(t *testing.T) {
	p := newPlatform(t, "storage")
	const nBlobs, blobSize = 4, 64 << 10
	in := workloads.MakeScanBlobs(nBlobs, blobSize)
	out, err := p.Invoke(workloads.WorkloadStorageScan, map[string][]dandelion.Item{
		"Blobs": in,
	})
	if err != nil {
		t.Fatal(err)
	}
	summary := string(out["Result"][0].Data)
	wantPrefix := fmt.Sprintf("blobs=%d bytes=%d ", nBlobs, nBlobs*blobSize)
	if !strings.HasPrefix(summary, wantPrefix) {
		t.Fatalf("summary %q, want prefix %q", summary, wantPrefix)
	}
	// Deterministic inputs make the digest reproducible across runs.
	out2, err := p.Invoke(workloads.WorkloadStorageScan, map[string][]dandelion.Item{
		"Blobs": workloads.MakeScanBlobs(nBlobs, blobSize),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(out2["Result"][0].Data); got != summary {
		t.Fatalf("digest not deterministic: %q vs %q", got, summary)
	}
}

func TestStorageFetchServed(t *testing.T) {
	p := newPlatform(t, "storage")
	const nBlobs, blobSize = 3, 256 << 10
	out, err := p.Invoke(workloads.WorkloadStorageFetch, map[string][]dandelion.Item{
		"Sizes": workloads.MakeFetchSizes(nBlobs, blobSize),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(out["Blobs"]); got != nBlobs {
		t.Fatalf("Blobs = %d items, want %d", got, nBlobs)
	}
	for _, it := range out["Blobs"] {
		if len(it.Data) != blobSize {
			t.Fatalf("%s: %d bytes, want %d", it.Name, len(it.Data), blobSize)
		}
		// Generated server-side from the item name: must match the
		// client-side generator byte for byte.
		if !bytes.Equal(it.Data, workloads.MakeBlob(blobSize, workloads.SeedFromName(it.Name))) {
			t.Fatalf("%s: blob bytes diverge from deterministic generator", it.Name)
		}
	}
}
