package dandelion_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"dandelion"
	"dandelion/internal/services"
)

// TestStorageCommunicationFunction uses the second communication
// function (the cloud-storage protocol) inside a composition: write a
// set of objects, read them back, and verify through the dataflow.
func TestStorageCommunicationFunction(t *testing.T) {
	store := services.NewObjectStore()
	srv, err := services.StartObjectStore(store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p := newPlatform(t, dandelion.Options{StorageURL: srv.URL()})

	p.RegisterFunction(dandelion.ComputeFunc{Name: "MakePuts", Go: func(in []dandelion.Set) ([]dandelion.Set, error) {
		out := dandelion.Set{Name: "Ops"}
		for _, it := range in[0].Items {
			out.Items = append(out.Items, dandelion.Item{
				Name: it.Name,
				Data: dandelion.StorageOp("PUT", "results", it.Name, bytes.ToUpper(it.Data)),
			})
		}
		return []dandelion.Set{out}, nil
	}})
	p.RegisterFunction(dandelion.ComputeFunc{Name: "MakeGets", Go: func(in []dandelion.Set) ([]dandelion.Set, error) {
		// Only proceed if every PUT succeeded.
		out := dandelion.Set{Name: "Ops"}
		for _, it := range in[0].Items {
			if ok, _ := dandelion.ParseStorageResult(it.Data); !ok {
				return nil, fmt.Errorf("put %s failed: %s", it.Name, it.Data)
			}
			out.Items = append(out.Items, dandelion.Item{
				Name: it.Name,
				Data: dandelion.StorageOp("GET", "results", it.Name, nil),
			})
		}
		return []dandelion.Set{out}, nil
	}})
	p.RegisterFunction(dandelion.ComputeFunc{Name: "Collect", Go: func(in []dandelion.Set) ([]dandelion.Set, error) {
		var parts []string
		for _, it := range in[0].Items {
			ok, payload := dandelion.ParseStorageResult(it.Data)
			if !ok {
				return nil, fmt.Errorf("get %s failed", it.Name)
			}
			parts = append(parts, string(payload))
		}
		return []dandelion.Set{{Name: "Out", Items: []dandelion.Item{
			{Name: "all", Data: []byte(strings.Join(parts, ","))},
		}}}, nil
	}})

	if _, err := p.RegisterCompositionText(`
composition RoundTrip(In) => Result {
    MakePuts(x = all In) => (puts = Ops);
    Storage(Ops = all puts) => (stored = Results);
    MakeGets(x = all stored) => (gets = Ops);
    Storage(Ops = all gets) => (fetched = Results);
    Collect(x = all fetched) => (Result = Out);
}`); err != nil {
		t.Fatal(err)
	}

	out, err := p.Invoke("RoundTrip", map[string][]dandelion.Item{
		"In": {
			{Name: "k1", Data: []byte("alpha")},
			{Name: "k2", Data: []byte("beta")},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := string(out["Result"][0].Data)
	if got != "ALPHA,BETA" {
		t.Fatalf("result = %q", got)
	}
	// Objects persisted in the store.
	if data, ok := store.Get("results", "k1"); !ok || string(data) != "ALPHA" {
		t.Fatal("object not stored")
	}
}

func TestStorageFunctionNotRegisteredWithoutURL(t *testing.T) {
	p := newPlatform(t, dandelion.Options{})
	p.RegisterFunction(dandelion.ComputeFunc{Name: "Mk", Go: func(in []dandelion.Set) ([]dandelion.Set, error) {
		return []dandelion.Set{{Name: "Ops", Items: []dandelion.Item{
			{Name: "o", Data: dandelion.StorageOp("GET", "b", "k", nil)},
		}}}, nil
	}})
	p.RegisterCompositionText(`
composition C(In) => Result {
    Mk(x = all In) => (ops = Ops);
    Storage(Ops = all ops) => (Result = Results);
}`)
	_, err := p.Invoke("C", map[string][]dandelion.Item{"In": {{Name: "x", Data: []byte("x")}}})
	if err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("err = %v, want not-registered", err)
	}
}

// TestStorageSanitizationFromComposition verifies that a malicious
// compute function cannot push a path-traversal operation through the
// trusted storage engine.
func TestStorageSanitizationFromComposition(t *testing.T) {
	store := services.NewObjectStore()
	srv, err := services.StartObjectStore(store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := newPlatform(t, dandelion.Options{StorageURL: srv.URL()})
	p.RegisterFunction(dandelion.ComputeFunc{Name: "Evil", Go: func(in []dandelion.Set) ([]dandelion.Set, error) {
		return []dandelion.Set{{Name: "Ops", Items: []dandelion.Item{
			{Name: "o", Data: []byte("GET ../secrets/key")},
		}}}, nil
	}})
	p.RegisterCompositionText(`
composition E(In) => Result {
    Evil(x = all In) => (ops = Ops);
    Storage(Ops = all ops) => (Result = Results);
}`)
	_, err = p.Invoke("E", map[string][]dandelion.Item{"In": {{Name: "x", Data: []byte("x")}}})
	if err == nil || !strings.Contains(err.Error(), "invalid bucket/key") {
		t.Fatalf("err = %v, want sanitization failure", err)
	}
}
